package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/blockfinder"
	"repro/internal/crc32x"
	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzindex"
	"repro/internal/pool"
	"repro/internal/spanengine"
)

// spanMeta is the gzip-side metadata of one span-engine table entry:
// the exact bit extent (the span table itself only keeps byte extents),
// the window bookkeeping, and the member marks needed for CRC
// verification.
type spanMeta struct {
	startBit, endBit  uint64
	startDecomp, size uint64
	atMemberStart     bool
	endIsEOF          bool
	// members records every gzip member end inside (or at the end of)
	// this entry, captured when the entry was confirmed. Re-decodes of
	// the entry — in particular the stdlib-delegated fast path, whose
	// results carry no footer events — verify against these marks.
	members []memberMark
}

// memberMark is the footer of a member ending inside a confirmed entry:
// the absolute decompressed offset where the member ends and the CRC32
// its footer declares.
type memberMark struct {
	absEnd uint64
	crc    uint32
}

// futureChunk is the future of an in-flight speculative chunk decode.
type futureChunk = pool.Future[*deflate.ChunkResult]

// gzipCodec is the deflate chunk pipeline expressed as a
// spanengine.GrowingCodec: the engine owns the cache, the prefetch
// strategy and the tentative pool; the codec owns the gzip-specific
// parts — block-finder speculation over grid cells, serial window
// propagation, chunk splitting, the seek-point index, and the
// member-CRC chain. BGZF files take the complete-table path instead
// (Scan enumerates members from metadata), which makes them an exact
// span source like bzip2/LZ4/zstd.
type gzipCodec struct {
	cfg      Config
	src      *filereader.SharedFileReader
	fileBits uint64
	bgzf     bool
	cnt      *counters

	// mu guards the chunk geometry and speculation bookkeeping. Lock
	// order: an engine-mutex holder may take mu (Speculate); a tentMu
	// holder may take mu (TentativeEvicted); crcMu holders may take mu
	// (SpanAccessed). Nothing holding mu may call engine methods that
	// take the engine mutex or the tentative pool's mutex.
	mu             sync.Mutex
	metas          []spanMeta
	byOff          map[int64]int // span CompOff -> metas index
	index          *gzindex.Index
	marksKnown     bool
	frontierBit    uint64
	frontierDecomp uint64
	frontierWindow []byte
	memberStart    uint64 // decompressed offset where the current member began
	eof            bool
	guessIssued    map[uint64]bool
	noBlock        map[uint64]bool
	inflightGuess  map[uint64]*futureChunk

	// Sequential CRC verification state (valid while consumption stays
	// in table order from span 0). crcMu holders may take mu; never the
	// reverse.
	crcMu     sync.Mutex
	crcNext   int
	crcAcc    uint32
	crcBroken bool
	consumed  map[int]bool
}

func newGzipCodec(cfg Config, src *filereader.SharedFileReader, cnt *counters) *gzipCodec {
	return &gzipCodec{
		cfg:           cfg,
		src:           src,
		fileBits:      uint64(src.Size()) * 8,
		cnt:           cnt,
		byOff:         map[int64]int{},
		index:         gzindex.New(cfg.ChunkSize),
		marksKnown:    true,
		guessIssued:   map[uint64]bool{},
		noBlock:       map[uint64]bool{},
		inflightGuess: map[uint64]*futureChunk{},
		consumed:      map[int]bool{},
	}
}

func (c *gzipCodec) chunkBits() uint64 { return uint64(c.cfg.ChunkSize) * 8 }

// FormatTag identifies the codec in persisted checkpoint tables.
func (c *gzipCodec) FormatTag() string {
	if c.bgzf {
		return "bgzf"
	}
	return "gzip"
}

// Scan is the sizing pass. Only the BGZF metadata walk implements it
// (see bgzf.go); generic gzip runs in growing mode, where Scan is never
// called.
func (c *gzipCodec) Scan(src filereader.FileReader) (spanengine.ScanResult, error) {
	if c.bgzf {
		return c.scanBGZF()
	}
	return spanengine.ScanResult{}, errors.New("core: gzip has no metadata sizing pass (growing mode only)")
}

// DecodeSpan decodes one confirmed span with its stored window — the
// fast path used for prefetches and random access once the entry exists
// (§3.3, §4.4: "the output buffer can be allocated beforehand ...
// marker replacement can be skipped"). The compressed bytes are read
// once, bounded to the span's extent, so source traffic stays
// proportional to what is actually decoded.
func (c *gzipCodec) DecodeSpan(src filereader.FileReader, s spanengine.Span) ([]byte, error) {
	c.mu.Lock()
	i, ok := c.byOff[s.CompOff]
	if !ok || int64(c.metas[i].startDecomp) != s.DecompOff {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: no chunk metadata for span at byte %d", s.CompOff)
	}
	m := c.metas[i]
	window, hasWin := c.index.Window(m.startBit)
	marksKnown := c.marksKnown
	c.mu.Unlock()

	if !hasWin && !m.atMemberStart {
		return nil, fmt.Errorf("core: no window for chunk at bit %d", m.startBit)
	}
	res, err := c.decodeMeta(m, window)
	if err != nil {
		return nil, err
	}
	c.cnt.indexed.Add(1)
	if !marksKnown {
		// Legacy index import (no persisted member marks): learn the
		// marks from the decode result's own footer events so the CRC
		// chain can verify this span. Assignment (not append) keeps a
		// racing duplicate decode idempotent.
		var members []memberMark
		for j := range res.Members {
			members = append(members, memberMark{
				absEnd: m.startDecomp + res.Members[j].DecompOffset,
				crc:    res.Members[j].Footer.CRC32,
			})
		}
		c.mu.Lock()
		c.metas[i].members = members
		c.mu.Unlock()
	}
	segs, err := res.Resolved(nil)
	if err != nil {
		return nil, err
	}
	return flattenRange(segs, 0, m.size), nil
}

// decodeMeta decodes one confirmed entry over a single bounded read of
// its compressed extent, using the custom single-stage decoder. The
// paper delegates indexed decodes to zlib (§3.3) because its marker
// decoder lost to zlib's inner loops; with the wide-refill kernels the
// single-stage decoder outruns compress/flate delegation (see
// BenchmarkChunkDecode* in internal/deflate), and it handles every
// chunk shape — member boundaries included — so no fallback chain is
// needed. Safe for concurrent calls: it touches no mutable codec state.
func (c *gzipCodec) decodeMeta(m spanMeta, window []byte) (res *deflate.ChunkResult, err error) {
	fileSize := int64(c.fileBits / 8)
	byteStart := int64(m.startBit / 8)
	// The decoder reads the next block's header fields before checking
	// the stop condition (up to ~6 bytes past the entry for a stored
	// block's LEN/NLEN), so the read window carries a small slack margin
	// past the entry's last bit.
	byteEnd := int64((m.endBit+7)/8) + 64
	if m.endIsEOF || byteEnd > fileSize {
		byteEnd = fileSize
	}
	buf := make([]byte, byteEnd-byteStart)
	if n, rerr := c.src.ReadAt(buf, byteStart); rerr != nil && n < len(buf) {
		return nil, rerr
	}
	relStart := m.startBit - uint64(byteStart)*8
	relEnd := m.endBit - uint64(byteStart)*8

	br := bitio.NewBitReaderBytes(buf)
	var dec deflate.Decoder
	stop := relEnd
	if m.endIsEOF {
		stop = deflate.StopAtEOF
	}
	out, err := dec.DecodeChunk(br, deflate.ChunkConfig{
		Start:              relStart,
		Stop:               stop,
		StopBeforeMember:   stop,
		Window:             window,
		StartsAtGzipHeader: m.atMemberStart,
		SizeHint:           int(m.size),
		// The block at the entry's end bit need not be stop-eligible
		// (sharded writers can open the next shard with a final or
		// Fixed block); the index size bounds the decode instead, and
		// the caller trims any same-block overshoot with flattenRange.
		StopAtOutput: m.size,
	})
	if err != nil {
		return nil, fmt.Errorf("core: indexed chunk at bit %d: %w", m.startBit, err)
	}
	if out.TotalOut() < m.size {
		return nil, fmt.Errorf("core: indexed chunk at bit %d decoded %d bytes, index says %d",
			m.startBit, out.TotalOut(), m.size)
	}
	return out, nil
}

// --- growing mode --------------------------------------------------------

// GrowNext confirms the next decode unit: it obtains the result for the
// exact frontier offset (tentative pool, in-flight speculation, or
// on-demand decode), propagates the window serially, verifies member
// sizes, splits oversized units into index entries, appends the
// resulting spans, and primes their contents — paper Figure 4 steps
// 5-6, with the engine's tentative pool playing the role of the result
// cache keyed by exact start offset.
func (c *gzipCodec) GrowNext(e *spanengine.Engine) (bool, error) {
	c.mu.Lock()
	if c.eof {
		c.mu.Unlock()
		return true, nil
	}
	E := c.frontierBit
	atMember := len(c.metas) == 0 // unit 0 starts at the gzip header
	window := c.frontierWindow
	c.mu.Unlock()

	res, err := c.obtainFrontier(e, E, atMember, window)
	if err != nil {
		return false, err
	}
	total := res.TotalOut()

	// Serial window propagation: resolve only the final <=32 KiB
	// (paper §2.2 — the non-parallelizable Amdahl term).
	newWindow, err := res.WindowAt(total, window)
	if err != nil {
		return false, fmt.Errorf("core: window propagation: %w", err)
	}

	c.mu.Lock()
	// ISIZE verification for every member ending inside this unit.
	for i := range res.Members {
		ev := &res.Members[i]
		absEnd := c.frontierDecomp + ev.DecompOffset
		size := absEnd - c.memberStart
		if uint32(size) != ev.Footer.ISize {
			c.mu.Unlock()
			return false, fmt.Errorf("core: gzip ISIZE mismatch at offset %d: footer %d, decoded %d",
				absEnd, ev.Footer.ISize, uint32(size))
		}
		c.memberStart = absEnd
	}

	// Record the unit, splitting oversized outputs into multiple index
	// entries so decompressed chunk sizes stay comparable (§1.4).
	unitStart := len(c.metas)
	splits := c.splitPoints(res)
	startBit := E
	startDecomp := c.frontierDecomp
	for _, sp := range splits {
		m := spanMeta{
			startBit:      startBit,
			endBit:        sp.endBit,
			startDecomp:   startDecomp,
			size:          c.frontierDecomp + sp.endDecomp - startDecomp,
			atMemberStart: unitStart == 0 && startBit == 0,
		}
		if err := c.index.Add(gzindex.SeekPoint{
			CompressedBitOffset: m.startBit,
			UncompressedOffset:  m.startDecomp,
			AtMemberStart:       m.atMemberStart,
		}, c.windowForLocked(m, res, window)); err != nil {
			c.mu.Unlock()
			return false, err
		}
		c.metas = append(c.metas, m)
		startBit = sp.endBit
		startDecomp = c.frontierDecomp + sp.endDecomp
	}
	c.metas[len(c.metas)-1].endIsEOF = res.EndIsEOF
	c.recordMemberMarksLocked(unitStart, res)

	// Byte-partition the unit into engine spans. Entry boundaries are
	// bit offsets; the span table carries byte extents, keyed back to
	// the metadata by the start byte (distinct for any realistic chunk
	// size: deflate's ~1032x ratio cap keeps entries > 1 byte apart).
	fileSize := int64(c.fileBits / 8)
	spans := make([]spanengine.Span, 0, len(c.metas)-unitStart)
	for i := unitStart; i < len(c.metas); i++ {
		m := &c.metas[i]
		compEnd := int64(m.endBit / 8)
		if m.endIsEOF {
			compEnd = fileSize
		}
		s := spanengine.Span{
			CompOff:    int64(m.startBit / 8),
			CompEnd:    compEnd,
			DecompOff:  int64(m.startDecomp),
			DecompSize: int64(m.size),
		}
		if _, dup := c.byOff[s.CompOff]; dup {
			c.mu.Unlock()
			return false, fmt.Errorf("core: two chunk entries share start byte %d (chunk size too small)", s.CompOff)
		}
		c.byOff[s.CompOff] = i
		spans = append(spans, s)
	}

	c.frontierWindow = newWindow
	c.frontierBit = res.EndBit
	c.frontierDecomp += total
	eof := res.EndIsEOF
	if eof {
		c.eof = true
		c.index.Finalized = true
		c.index.UncompressedSize = c.frontierDecomp
	}
	var markWindow []byte
	if len(res.Marked) > 0 {
		markWindow = window
	}
	c.mu.Unlock()

	base := e.AppendSpans(spans...)
	// Dispatch this unit's full marker replacement to the pool right
	// away (paper Figure 4, step 5) — confirmation of the next unit
	// does not wait for it, so replacements overlap. Every entry of the
	// unit shares the one resolution.
	shared := pool.Go(e.Pool(), func() ([][]byte, error) {
		return res.Resolved(markWindow)
	})
	rel := uint64(0)
	for j, s := range spans {
		lo, hi := rel, rel+uint64(s.DecompSize)
		e.Prime(base+j, func() ([]byte, error) {
			segs, err := shared.Wait()
			if err != nil {
				return nil, err
			}
			return flattenRange(segs, lo, hi), nil
		})
		rel = hi
	}
	if eof {
		c.drainGuesses()
	}
	return eof, nil
}

// GrowReady reports whether the next GrowNext would complete without
// blocking: a speculative result is parked at the exact frontier key.
// The engine uses it to confirm ready units opportunistically, keeping
// the serial confirmation walk ahead of consumption.
func (c *gzipCodec) GrowReady(e *spanengine.Engine) bool {
	c.mu.Lock()
	E := c.frontierBit
	eof := c.eof
	c.mu.Unlock()
	return !eof && e.HasTentative(E)
}

// obtainFrontier fetches the decode result starting exactly at bit E —
// paper Figure 4: the consumer requests chunks by the exact end offset
// of the previous chunk; mismatches fall back to an on-demand decode.
func (c *gzipCodec) obtainFrontier(e *spanengine.Engine, E uint64, atMember bool, window []byte) (*deflate.ChunkResult, error) {
	if v, ok := e.TakeTentative(E); ok {
		return v.(*deflate.ChunkResult), nil
	}
	g := E / c.chunkBits()
	c.mu.Lock()
	fut := c.inflightGuess[g]
	c.mu.Unlock()
	if fut != nil {
		res, err := fut.Wait()
		if err == nil {
			if res.StartBit == E {
				// The task parked its result before resolving; claim it
				// (it may already have aged out, the direct result is
				// just as good).
				e.TakeTentative(E)
				return res, nil
			}
			c.cnt.guessFalseStarts.Add(1)
		}
	}
	// On-demand exact decode with the known window (single-stage).
	c.cnt.onDemand.Add(1)
	stop := (E/c.chunkBits() + 1) * c.chunkBits()
	br := bitio.NewBitReader(c.src, int64(c.fileBits/8))
	var dec deflate.Decoder
	res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
		Start:              E,
		Stop:               stop,
		Window:             window,
		StartsAtGzipHeader: atMember,
		SizeHint:           4 * c.cfg.ChunkSize,
	})
	if err != nil {
		return nil, fmt.Errorf("core: decode at bit %d: %w", E, err)
	}
	return res, nil
}

// Speculate maps a prefetch candidate beyond the confirmed table to a
// grid cell past the frontier and dispatches a speculative block-finder
// decode for it. Called with the engine's mutex held: bookkeeping plus
// pool submission only.
func (c *gzipCodec) Speculate(e *spanengine.Engine, cand uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eof {
		return
	}
	cb := c.chunkBits()
	gap := uint64(0)
	if n := uint64(len(c.metas)); cand > n {
		gap = cand - n
	}
	g := c.frontierBit/cb + 1 + gap
	if g*cb >= c.fileBits || c.guessIssued[g] || c.noBlock[g] ||
		c.inflightGuess[g] != nil || len(c.inflightGuess) >= c.cfg.MaxPrefetch {
		return
	}
	c.guessIssued[g] = true
	c.cnt.guessTasks.Add(1)
	// The task records its own outcome before the future resolves, so a
	// frontier consumer that waits on the future always finds the
	// result parked (or the cell marked no-block) afterwards.
	c.inflightGuess[g] = pool.GoLow(e.Pool(), func() (*deflate.ChunkResult, error) {
		res, err := c.guessTask(g)
		switch {
		case err == nil:
			e.PutTentative(res.StartBit, res)
		case errors.Is(err, errNoBlock):
			c.cnt.guessNoBlock.Add(1)
			c.mu.Lock()
			c.noBlock[g] = true
			c.mu.Unlock()
		}
		c.mu.Lock()
		delete(c.inflightGuess, g)
		c.mu.Unlock()
		return res, err
	})
}

// TentativeEvicted re-arms the guessed-cell bitmap when the tentative
// pool drops a parked result, so the speculation can be retried.
func (c *gzipCodec) TentativeEvicted(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.guessIssued, key/c.chunkBits())
}

// drainGuesses settles every speculative task still in flight once the
// frontier has reached EOF. No future frontier request will ever wait
// on them, so without this their outcomes (no-block cells, usable
// results for later random access) could go unrecorded — a single-block
// file would report zero no-block cells despite having probed every
// one of them.
func (c *gzipCodec) drainGuesses() {
	for {
		c.mu.Lock()
		var fut *pool.Future[*deflate.ChunkResult]
		for _, f := range c.inflightGuess {
			fut = f
			break
		}
		c.mu.Unlock()
		if fut == nil {
			return
		}
		// The task removes itself from the map (and records its outcome)
		// before the future resolves.
		fut.Wait() //nolint:errcheck // outcomes are recorded by the task itself
	}
}

// guessTask searches cell g for a block start and decodes from it with
// markers (paper Figure 4, steps 4-5). It runs on a worker goroutine
// and touches no mutable codec state.
func (c *gzipCodec) guessTask(g uint64) (*deflate.ChunkResult, error) {
	cb := c.chunkBits()
	B := g * cb
	stop := B + cb
	end := stop
	if end > c.fileBits {
		end = c.fileBits
	}
	// Search buffer: the cell plus margin so headers that spill past the
	// boundary can still be validated.
	bufStart := int64(B / 8)
	bufEnd := int64((end+7)/8) + 512
	if bufEnd > int64(c.fileBits/8) {
		bufEnd = int64(c.fileBits / 8)
	}
	buf := make([]byte, bufEnd-bufStart)
	if n, err := c.src.ReadAt(buf, bufStart); err != nil && n < len(buf) {
		return nil, err
	}
	finder := blockfinder.NewCombinedFinder()
	br := bitio.NewBitReader(c.src, int64(c.fileBits/8))
	var dec deflate.Decoder
	searchFrom := B - uint64(bufStart)*8
	for {
		c.cnt.finderProbes.Add(1)
		cand, ok := finder.Next(buf, searchFrom)
		abs := uint64(bufStart)*8 + cand
		if !ok || abs >= end {
			return nil, errNoBlock
		}
		res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
			Start:           abs,
			Stop:            stop,
			TwoStage:        true,
			MaxDecompressed: uint64(c.cfg.GuessedRatioLimit) * uint64(c.cfg.ChunkSize),
			SizeHint:        2 * c.cfg.ChunkSize,
		})
		if err == nil {
			return res, nil
		}
		searchFrom = cand + 1
	}
}

// splitPoint delimits one index entry inside a decode unit.
type splitPoint struct {
	endBit    uint64 // compressed end of this entry
	endDecomp uint64 // decompressed end within the unit output
}

// splitPoints returns entry boundaries for a decode unit: roughly one
// entry per ChunkSize of decompressed output, cut at recorded non-final
// Dynamic/Stored block starts (which the per-entry stop condition can
// recognise).
func (c *gzipCodec) splitPoints(res *deflate.ChunkResult) []splitPoint {
	total := res.TotalOut()
	target := uint64(c.cfg.ChunkSize)
	var out []splitPoint
	if total > 2*target {
		nextCut := target
		for _, bs := range res.BlockStarts {
			if bs.DecompOffset == 0 || bs.Final || bs.Type == deflate.BlockFixed {
				continue
			}
			if bs.DecompOffset >= nextCut && total-bs.DecompOffset > target/2 {
				out = append(out, splitPoint{endBit: bs.Bit, endDecomp: bs.DecompOffset})
				nextCut = bs.DecompOffset + target
			}
		}
	}
	out = append(out, splitPoint{endBit: res.EndBit, endDecomp: total})
	return out
}

// windowForLocked computes the stored window for an index entry of the
// unit currently being confirmed. unitWindow is the frontier window at
// the unit start. Caller holds c.mu.
func (c *gzipCodec) windowForLocked(m spanMeta, res *deflate.ChunkResult, unitWindow []byte) []byte {
	if m.atMemberStart {
		return nil
	}
	if m.startDecomp == c.frontierDecomp {
		w := make([]byte, len(unitWindow))
		copy(w, unitWindow)
		return w
	}
	w, err := res.WindowAt(m.startDecomp-c.frontierDecomp, unitWindow)
	if err != nil {
		return nil
	}
	return w
}

// recordMemberMarksLocked distributes the footer events of a freshly
// confirmed decode unit over its entries [unitStart, len(metas)). A
// member ending at decompressed offset X belongs to the entry whose
// span (start, start+size] contains X; the zero-length edge case (a
// member boundary exactly at the unit start) attaches to the first
// entry. Caller holds c.mu; the frontier has not advanced yet.
func (c *gzipCodec) recordMemberMarksLocked(unitStart int, res *deflate.ChunkResult) {
	e := unitStart
	for i := range res.Members {
		absEnd := c.frontierDecomp + res.Members[i].DecompOffset
		for e < len(c.metas)-1 && absEnd > c.metas[e].startDecomp+c.metas[e].size {
			e++
		}
		crc := res.Members[i].Footer.CRC32
		c.metas[e].members = append(c.metas[e].members, memberMark{absEnd: absEnd, crc: crc})
		// Mirror the mark into the index so an export→import round trip
		// restores it (and with it, full member verification).
		c.index.AddMemberEnd(c.metas[e].startBit,
			gzindex.MemberEnd{RelEnd: absEnd - c.metas[e].startDecomp, CRC32: crc})
	}
}

// --- consumption-order CRC chain -----------------------------------------

// crcBound marks a member end within a span: the offset relative to the
// span start and the expected footer CRC32.
type crcBound struct {
	relEnd uint64
	crc    uint32
}

// crcPart carries the checksum of a member-delimited range of a span.
type crcPart struct {
	len       uint64
	crc       uint32
	expect    uint32 // footer CRC32 of the member ending after this part
	hasExpect bool
}

// SpanAccessed is the engine's consumption callback: it counts distinct
// span consumption and accumulates member CRCs while consumption stays
// in table order, comparing them against the gzip footers (§6 future
// work, implemented). Out-of-order access disables verification.
func (c *gzipCodec) SpanAccessed(i int, data []byte) {
	c.crcMu.Lock()
	defer c.crcMu.Unlock()
	if !c.consumed[i] {
		c.consumed[i] = true
		c.cnt.consumed.Add(1)
	}
	if !c.cfg.VerifyChecksums || c.crcBroken {
		return
	}
	if i < c.crcNext {
		return // already accounted (repeated access to a cached span)
	}
	if i != c.crcNext {
		c.crcBroken = true
		return
	}
	c.mu.Lock()
	m := c.metas[i]
	c.mu.Unlock()
	var bounds []crcBound
	for _, mm := range m.members {
		bounds = append(bounds, crcBound{relEnd: mm.absEnd - m.startDecomp, crc: mm.crc})
	}
	for _, p := range crcParts(bounds, uint64(len(data)), [][]byte{data}) {
		c.crcAcc = crc32x.Combine(c.crcAcc, p.crc, int64(p.len))
		if p.hasExpect {
			if c.crcAcc != p.expect {
				c.crcBroken = true
				c.cnt.crcFailures.Add(1)
				return
			}
			c.crcAcc = 0
		}
	}
	c.crcNext = i + 1
}

// crcParts computes member-delimited CRCs of the span bytes.
func crcParts(bounds []crcBound, total uint64, segs [][]byte) []crcPart {
	var parts []crcPart
	pos := uint64(0)
	segIdx, segOff := 0, 0
	advance := func(n uint64) uint32 {
		crc := uint32(0)
		for n > 0 && segIdx < len(segs) {
			seg := segs[segIdx][segOff:]
			take := uint64(len(seg))
			if take > n {
				take = n
			}
			crc = crc32x.Combine(crc, crc32x.Checksum(seg[:take]), int64(take))
			segOff += int(take)
			n -= take
			if segOff == len(segs[segIdx]) {
				segIdx++
				segOff = 0
			}
		}
		return crc
	}
	for _, b := range bounds {
		n := b.relEnd - pos
		parts = append(parts, crcPart{len: n, crc: advance(n), expect: b.crc, hasExpect: true})
		pos = b.relEnd
	}
	if rest := total - pos; rest > 0 || len(parts) == 0 {
		parts = append(parts, crcPart{len: rest, crc: advance(rest)})
	}
	return parts
}

// crcStatus reports (verifiedSoFar, failures).
func (c *gzipCodec) crcStatus() (bool, uint64) {
	c.crcMu.Lock()
	defer c.crcMu.Unlock()
	return !c.crcBroken, c.cnt.crcFailures.Load()
}

// flattenRange copies bytes [relStart, relEnd) of the segment list into
// one contiguous slice. A single segment covering the range exactly is
// returned without copying.
func flattenRange(segs [][]byte, relStart, relEnd uint64) []byte {
	if relEnd <= relStart {
		return nil
	}
	pos := uint64(0)
	for _, seg := range segs {
		segEnd := pos + uint64(len(seg))
		if pos == relStart && segEnd == relEnd {
			return seg
		}
		if segEnd > relStart {
			break
		}
		pos = segEnd
	}
	out := make([]byte, 0, relEnd-relStart)
	pos = 0
	for _, seg := range segs {
		segEnd := pos + uint64(len(seg))
		if segEnd > relStart && pos < relEnd {
			lo := uint64(0)
			if relStart > pos {
				lo = relStart - pos
			}
			hi := uint64(len(seg))
			if relEnd < segEnd {
				hi = relEnd - pos
			}
			out = append(out, seg[lo:hi]...)
		}
		pos = segEnd
		if pos >= relEnd {
			break
		}
	}
	return out
}
