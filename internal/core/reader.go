package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/filereader"
	"repro/internal/gzindex"
	"repro/internal/spanengine"
)

// ParallelGzipReader is the public face of the architecture (§3.1): an
// io.Reader/Seeker/ReaderAt/WriterTo over the decompressed stream of a
// gzip file, decompressing in parallel and building a seek-point index
// on the fly.
//
// All methods are safe for concurrent use; concurrent ReadAt calls at
// different offsets share the span caches, the scenario §3 describes
// for ratarmount-style filesystem access.
type ParallelGzipReader struct {
	mu  sync.Mutex // guards pos and index import/export ordering
	f   *Fetcher
	pos uint64
}

// NewReader opens src for parallel decompression.
func NewReader(src filereader.FileReader, cfg Config) (*ParallelGzipReader, error) {
	f, err := NewFetcher(src, cfg)
	if err != nil {
		return nil, err
	}
	return &ParallelGzipReader{f: f}, nil
}

// Close releases the worker pool. Outstanding calls must have returned.
func (r *ParallelGzipReader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.f.Close()
	return nil
}

// Read implements io.Reader. A seek only updates the position; all work
// happens here (§3.1: "A seek only updates the internal position").
func (r *ParallelGzipReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, err := r.f.eng.ReadAt(p, int64(r.pos))
	r.pos += uint64(n)
	if n > 0 && err == io.EOF {
		err = nil
	}
	return n, err
}

// Seek implements io.Seeker. SeekEnd completes the initial scan first
// because the decompressed size is only known afterwards.
func (r *ParallelGzipReader) Seek(offset int64, whence int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(r.pos)
	case io.SeekEnd:
		size, err := r.f.TotalSize()
		if err != nil {
			return 0, err
		}
		base = int64(size)
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	target := base + offset
	if target < 0 {
		return 0, fmt.Errorf("core: negative seek position %d", target)
	}
	r.pos = uint64(target)
	return target, nil
}

// ReadAt implements io.ReaderAt without disturbing the Read cursor. It
// deliberately bypasses the reader mutex: the engine is concurrent-safe
// and parallel ReadAt callers share its span cache (§3's ratarmount
// scenario).
func (r *ParallelGzipReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	return r.f.eng.ReadAt(p, off)
}

// WriteTo implements io.WriterTo: the fast path for full-file
// decompression, streaming span contents in order without the copy
// into a caller buffer.
func (r *ParallelGzipReader) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng := r.f.eng
	var written int64
	for {
		i, err := eng.SpanAt(int64(r.pos))
		if err == io.EOF {
			return written, nil
		}
		if err != nil {
			return written, err
		}
		data, err := eng.SpanContent(i)
		if err != nil {
			return written, err
		}
		off, _ := eng.SpanExtent(i)
		n, err := w.Write(data[r.pos-uint64(off):])
		written += int64(n)
		r.pos += uint64(n)
		if err != nil {
			return written, err
		}
	}
}

// Size returns the decompressed size, scanning the remainder of the
// file if it has not been fully indexed yet.
func (r *ParallelGzipReader) Size() (int64, error) {
	size, err := r.f.TotalSize()
	return int64(size), err
}

// KnownSize returns the decompressed size if it is already known
// without further decoding: immediately for BGZF (whose metadata scan
// enumerates every member up front) and for plain gzip once the
// initial scan completed or an index was imported.
func (r *ParallelGzipReader) KnownSize() (int64, bool) {
	if !r.f.eng.Complete() {
		return 0, false
	}
	return r.f.eng.Size(), true
}

// AdviseSequential hints the OS that the compressed backing file is
// about to be read front to back (no-op for memory-backed sources and
// on platforms without posix_fadvise).
func (r *ParallelGzipReader) AdviseSequential() {
	filereader.AdviseSequential(r.f.file, 0, r.f.file.Size())
}

// BuildIndex completes the seek-point index for the whole file.
func (r *ParallelGzipReader) BuildIndex() error {
	return r.f.EnsureAll()
}

// ExportIndex serialises the (completed) index to w, including the
// engine's span table as a persistable checkpoint section — the part a
// reopen uses to skip the sizing pass entirely.
func (r *ParallelGzipReader) ExportIndex(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.f.EnsureAll(); err != nil {
		return err
	}
	ix := r.f.Index()
	ix.Checkpoints = r.f.checkpointTable()
	_, err := ix.WriteTo(w)
	return err
}

// ImportIndex installs a previously exported index, skipping the
// initial decompression pass. The deserializer reads varint-by-varint
// and consumes exactly the index bytes; callers whose rd holds nothing
// but the index (an index file, in particular) should pass a buffered
// reader to avoid per-byte reads of the underlying source.
func (r *ParallelGzipReader) ImportIndex(rd io.Reader) error {
	ix, err := gzindex.Read(rd)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.ImportIndex(ix)
}

// Index exposes the index built so far (read-only use).
func (r *ParallelGzipReader) Index() *gzindex.Index {
	return r.f.Index()
}

// FetcherStats returns a snapshot of fetcher activity counters.
func (r *ParallelGzipReader) FetcherStats() FetcherStats {
	return r.f.StatsSnapshot()
}

// EngineStats returns the span-engine counters (cache, prefetch,
// source-read activity).
func (r *ParallelGzipReader) EngineStats() spanengine.Stats {
	return r.f.EngineStats()
}

// CRCStatus reports checksum verification state (see Fetcher.CRCStatus).
func (r *ParallelGzipReader) CRCStatus() (bool, uint64) {
	return r.f.CRCStatus()
}
