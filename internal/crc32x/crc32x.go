// Package crc32x adds CRC32 (IEEE, the gzip polynomial) combination:
// given crc(A), crc(B) and len(B), it computes crc(A||B) without
// touching the data. This lets the parallel reader verify gzip member
// checksums even though chunks are decompressed out of order — the
// checksum support the paper lists as future work (§6), implemented
// here via the standard GF(2) matrix technique used by zlib's
// crc32_combine.
package crc32x

import "hash/crc32"

// gf2Matrix is a 32x32 bit matrix over GF(2); row i is the image of bit i.
type gf2Matrix [32]uint32

func (m *gf2Matrix) timesVec(v uint32) uint32 {
	var sum uint32
	for i := 0; v != 0; i, v = i+1, v>>1 {
		if v&1 != 0 {
			sum ^= m[i]
		}
	}
	return sum
}

func (m *gf2Matrix) square(into *gf2Matrix) {
	for i := 0; i < 32; i++ {
		into[i] = m.timesVec(m[i])
	}
}

// zeroOperators[k] is the pure-linear operator advancing a CRC register
// over 2^k zero bytes.
var zeroOperators []gf2Matrix

func init() {
	// odd = operator for one zero *bit*: CRC shifts right, XOR poly.
	var odd gf2Matrix
	odd[0] = 0xEDB88320 // reflected IEEE polynomial
	for i := 1; i < 32; i++ {
		odd[i] = 1 << (i - 1)
	}
	var even gf2Matrix
	odd.square(&even) // 2 bits
	even.square(&odd) // 4 bits
	odd.square(&even) // 8 bits = 1 byte
	zeroOperators = append(zeroOperators, even)
	// Each further squaring doubles the zero-byte count: 2, 4, 8, ...
	cur := even
	for i := 0; i < 60; i++ {
		var next gf2Matrix
		cur.square(&next)
		zeroOperators = append(zeroOperators, next)
		cur = next
	}
}

// Combine returns the CRC of the concatenation A||B given crcA = crc(A),
// crcB = crc(B) and lenB = len(B).
func Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	// Advance crcA over lenB zero bytes, then XOR with crcB.
	return applyZeros(crcA, uint64(lenB)) ^ crcB
}

// applyZeros computes L(Z_n)·crc — the pure-linear advance of crc over
// nBytes zero bytes. It must stay purely linear (no crc32.Update calls,
// whose result includes the affine pre/post-conditioning terms) for the
// Combine identity crc(A||B) = L(B)·crc(A) ^ crc(B) to hold.
func applyZeros(crc uint32, nBytes uint64) uint32 {
	for k := 0; nBytes != 0; k, nBytes = k+1, nBytes>>1 {
		if nBytes&1 != 0 {
			crc = zeroOperators[k].timesVec(crc)
		}
	}
	return crc
}

// Update extends crc over p, the plain sequential operation.
func Update(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crc32.IEEETable, p)
}

// Checksum computes the CRC of p from scratch.
func Checksum(p []byte) uint32 {
	return crc32.ChecksumIEEE(p)
}
