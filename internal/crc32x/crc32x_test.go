package crc32x

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCombineMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]byte, rng.Intn(10000))
		b := make([]byte, rng.Intn(10000))
		rng.Read(a)
		rng.Read(b)
		whole := append(append([]byte(nil), a...), b...)
		want := crc32.ChecksumIEEE(whole)
		got := Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineEmptyParts(t *testing.T) {
	data := []byte("rapidgzip")
	crc := crc32.ChecksumIEEE(data)
	if got := Combine(crc, crc32.ChecksumIEEE(nil), 0); got != crc {
		t.Fatalf("empty B: %#x want %#x", got, crc)
	}
	if got := Combine(crc32.ChecksumIEEE(nil), crc, int64(len(data))); got != crc {
		t.Fatalf("empty A: %#x want %#x", got, crc)
	}
}

func TestCombineManyParts(t *testing.T) {
	// Simulates the parallel reader combining per-chunk CRCs.
	rng := rand.New(rand.NewSource(7))
	var whole []byte
	crc := uint32(0)
	for i := 0; i < 20; i++ {
		part := make([]byte, rng.Intn(100_000))
		rng.Read(part)
		whole = append(whole, part...)
		crc = Combine(crc, crc32.ChecksumIEEE(part), int64(len(part)))
	}
	if want := crc32.ChecksumIEEE(whole); crc != want {
		t.Fatalf("got %#x want %#x", crc, want)
	}
}

func TestCombineLargeLengths(t *testing.T) {
	// The operator table must cover many doublings; emulate a multi-GiB
	// B of zeros.
	zeros := make([]byte, 1<<20)
	crcZeros1M := crc32.ChecksumIEEE(zeros)
	// crc(A || 1MiB zeros) via combine must equal direct computation.
	a := []byte("head")
	whole := append(append([]byte(nil), a...), zeros...)
	want := crc32.ChecksumIEEE(whole)
	got := Combine(crc32.ChecksumIEEE(a), crcZeros1M, 1<<20)
	if got != want {
		t.Fatalf("got %#x want %#x", got, want)
	}
}

func TestUpdateAndChecksum(t *testing.T) {
	data := []byte("hello gzip world")
	if Checksum(data) != crc32.ChecksumIEEE(data) {
		t.Fatal("Checksum mismatch")
	}
	if Update(Update(0, data[:5]), data[5:]) != crc32.ChecksumIEEE(data) {
		t.Fatal("Update mismatch")
	}
}

func BenchmarkCombine(b *testing.B) {
	crcA := Checksum([]byte("a"))
	crcB := Checksum([]byte("b"))
	for i := 0; i < b.N; i++ {
		Combine(crcA, crcB, 123456789)
	}
}
