package rapidgzip

import (
	"archive/tar"
	"bytes"
	"io"
	"io/fs"
	"testing"

	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// TestZstdCapabilitiesMatrix pins the truthfulness contract of the
// fifth format: parallelism and metadata random access are advertised
// exactly when the frame table is complete from headers alone.
func TestZstdCapabilitiesMatrix(t *testing.T) {
	data := workloads.Base64(400_000, 4)
	cases := []struct {
		name                 string
		opts                 zstdx.FrameOptions
		parallel, verify, ra bool
	}{
		{"multi-frame-sized", zstdx.FrameOptions{Level: 1, FrameSize: 100 << 10, ContentChecksum: true}, true, true, true},
		{"single-frame", zstdx.FrameOptions{Level: 1, ContentChecksum: true}, false, true, false},
		{"multi-frame-unsized", zstdx.FrameOptions{Level: 1, FrameSize: 100 << 10, OmitContentSize: true}, false, false, false},
		{"no-checksum", zstdx.FrameOptions{Level: 1, FrameSize: 100 << 10}, true, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := OpenBytes(zstdx.CompressFrames(data, c.opts), WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if a.Format() != FormatZstd {
				t.Fatalf("Format = %v", a.Format())
			}
			caps := a.Capabilities()
			if caps.Parallel != c.parallel || caps.Verify != c.verify || caps.RandomAccess != c.ra {
				t.Fatalf("capabilities %+v, want Parallel=%v Verify=%v RandomAccess=%v",
					caps, c.parallel, c.verify, c.ra)
			}
			if !caps.Seek || !caps.Index {
				t.Fatalf("capabilities %+v: zstd must always Seek and Index", caps)
			}
			if caps.Prefetch != c.parallel {
				t.Fatalf("capabilities %+v: Prefetch should track Parallel", caps)
			}
			// Whatever the capability level, content must be exact.
			var out bytes.Buffer
			if _, err := io.Copy(&out, a); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatal("content mismatch")
			}
			if err := a.BuildIndex(); err != nil {
				t.Fatalf("BuildIndex must be a no-op, got %v", err)
			}
			if err := a.ExportIndex(io.Discard); err != nil {
				t.Fatalf("ExportIndex: %v", err)
			}
		})
	}
}

// TestZstdWriteToChunkPipeline checks the ordered batched consumption
// path (WriteTo) against plain ReadAt content, from a non-zero cursor.
func TestZstdWriteToChunkPipeline(t *testing.T) {
	data := workloads.FASTQ(700_000, 14)
	comp := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 64 << 10, ContentChecksum: true})
	a, err := OpenBytes(comp, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const skip = 123_457
	if _, err := a.Seek(skip, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := a.WriteTo(&out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)-skip) {
		t.Fatalf("WriteTo moved %d bytes, want %d", n, len(data)-skip)
	}
	if !bytes.Equal(out.Bytes(), data[skip:]) {
		t.Fatal("WriteTo content mismatch")
	}
}

// TestTarFSOverZstd serves files out of a .tar.zst exactly like the
// other containers.
func TestTarFSOverZstd(t *testing.T) {
	var tarBuf bytes.Buffer
	tw := tar.NewWriter(&tarBuf)
	files := map[string][]byte{
		"docs/readme.txt": []byte("zstd tarfs works"),
		"data/blob.bin":   workloads.Random(50_000, 6),
		"empty.txt":       {},
	}
	for name, content := range files {
		if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(content))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(content); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	comp := zstdx.CompressFrames(tarBuf.Bytes(), zstdx.FrameOptions{Level: 1, FrameSize: 20 << 10, ContentChecksum: true})
	a, err := OpenBytes(comp, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	fsys, err := TarFS(a)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range files {
		got, err := fs.ReadFile(fsys, name)
		if err != nil {
			t.Fatalf("ReadFile(%q): %v", name, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("ReadFile(%q): content mismatch", name)
		}
	}
}

// TestZstdForcedFormat covers WithFormat routing and its failure mode.
func TestZstdForcedFormat(t *testing.T) {
	data := workloads.Base64(50_000, 3)
	comp := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1})
	a, err := OpenBytes(comp, WithFormat(FormatZstd))
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := OpenBytes(comp, WithFormat(FormatLZ4)); err == nil {
		t.Fatal("LZ4 backend accepted a zstd file")
	}
	if _, err := OpenBytes(data, WithFormat(FormatZstd)); err == nil {
		t.Fatal("zstd backend accepted uncompressed text")
	}
}

// TestZstdSkippableLeadSniffs covers files that begin with a skippable
// frame — pzstd writes those — which must still sniff as zstd.
func TestZstdSkippableLeadSniffs(t *testing.T) {
	data := workloads.Base64(80_000, 10)
	comp := zstdx.AppendSkippable(nil, []byte("pzstd-style metadata"))
	comp = append(comp, zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 20 << 10})...)
	if got := DetectFormat(comp[:SniffLen]); got != FormatZstd {
		t.Fatalf("DetectFormat = %v, want zstd", got)
	}
	a, err := OpenBytes(comp, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch")
	}
}
