package rapidgzip

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/workloads"
)

// TestSharedPoolAcrossArchives opens every format against one small
// CachePool and hammers random access: the pool's resident bytes must
// never exceed the budget (a hot archive evicts a cold one's spans
// instead of growing), per-archive Stats must stay live, and closing
// archives must release their bytes back to the budget.
func TestSharedPoolAcrossArchives(t *testing.T) {
	data := workloads.Base64(600_000, 31)
	fixtures := spanFixtures(t, data)

	const budget = 128 << 10 // far below the 600k working set per archive
	pool := NewCachePool(budget)

	var archives []Archive
	for format, comp := range fixtures {
		a, err := OpenBytes(comp, WithSharedPool(pool), WithParallelism(2))
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		defer a.Close()
		archives = append(archives, a)
	}
	if got := pool.Stats().Archives; got != len(archives) {
		t.Fatalf("pool reports %d archives, want %d", got, len(archives))
	}

	rng := rand.New(rand.NewSource(99))
	buf := make([]byte, 512)
	for i := 0; i < 300; i++ {
		a := archives[rng.Intn(len(archives))]
		off := rng.Int63n(int64(len(data) - len(buf)))
		if _, err := a.ReadAt(buf, off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
			t.Fatalf("ReadAt(%d): content mismatch", off)
		}
	}

	ps := pool.Stats()
	if ps.PeakBytes > ps.BudgetBytes {
		t.Errorf("peak %d exceeded budget %d", ps.PeakBytes, ps.BudgetBytes)
	}
	if ps.UsedBytes > ps.BudgetBytes {
		t.Errorf("used %d exceeds budget %d", ps.UsedBytes, ps.BudgetBytes)
	}
	if ps.Evictions == 0 {
		t.Error("no pool evictions despite working set >> budget")
	}
	if ps.Hits == 0 {
		t.Error("no pool hits despite repeated access")
	}

	// Per-archive stats keep working in pool mode: the engine's cache
	// counters are the pooled view's.
	var liveStats int
	for _, a := range archives {
		s := a.Stats()
		if s.SpanCacheHits+s.SpanCacheMisses > 0 {
			liveStats++
		}
	}
	if liveStats == 0 {
		t.Error("no archive reports span-cache activity through the pool")
	}

	// Closing archives releases their cached bytes back to the budget.
	for _, a := range archives {
		a.Close()
	}
	ps = pool.Stats()
	if ps.UsedBytes != 0 || ps.Entries != 0 {
		t.Errorf("after closing all archives: used=%d entries=%d, want 0/0", ps.UsedBytes, ps.Entries)
	}
	if ps.Archives != 0 {
		t.Errorf("after closing all archives: %d archives still registered", ps.Archives)
	}
}

// TestSharedPoolSurvivesImportIndex pins a subtle plumbing property:
// ImportIndex rebuilds a span archive's backend, and the rebuilt
// engine must still cache into the shared pool (the archive retains
// its full open configuration, not just the legacy Options).
func TestSharedPoolSurvivesImportIndex(t *testing.T) {
	data := workloads.Base64(200_000, 5)
	comp := spanFixtures(t, data)[FormatLZ4]

	pool := NewCachePool(1 << 20)
	a, err := OpenBytes(comp, WithSharedPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var ix bytes.Buffer
	if err := a.ExportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	if err := a.ImportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := a.ReadAt(buf, 100_000); err != nil {
		t.Fatal(err)
	}
	if ps := pool.Stats(); ps.UsedBytes == 0 {
		t.Error("rebuilt backend caches nothing into the shared pool")
	}
}

// TestWithSharedPoolNil rejects the nil pool at option time.
func TestWithSharedPoolNil(t *testing.T) {
	if _, err := OpenBytes([]byte{0x1f, 0x8b}, WithSharedPool(nil)); err == nil {
		t.Fatal("WithSharedPool(nil) accepted")
	}
}

// TestDecompressedSize pins the no-decode size contract: span formats
// know the size from construction; plain gzip only after its table is
// complete (scan or index), BGZF immediately via the metadata scan —
// and the answer always matches Size().
func TestDecompressedSize(t *testing.T) {
	data := workloads.Base64(150_000, 3)
	for format, comp := range spanFixtures(t, data) {
		t.Run(format.String(), func(t *testing.T) {
			a, err := OpenBytes(comp)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			size, ok := a.DecompressedSize()
			if format == FormatGzip {
				// A cold plain-gzip open has not scanned yet; the cheap
				// answer must refuse rather than trigger a decode.
				if ok {
					t.Fatal("plain gzip reports a size before any scan")
				}
				if err := a.BuildIndex(); err != nil {
					t.Fatal(err)
				}
				size, ok = a.DecompressedSize()
			}
			if !ok || size != int64(len(data)) {
				t.Fatalf("DecompressedSize = %d, %v; want %d, true", size, ok, len(data))
			}
			full, err := a.Size()
			if err != nil || full != size {
				t.Fatalf("Size() = %d, %v disagrees with DecompressedSize %d", full, err, size)
			}
		})
	}
}

// TestCloseVsReadAtRace closes file-backed archives while readers are
// mid-flight: every reader must finish with either valid data or the
// typed ErrClosed — never a raw pread-on-closed-fd error, and never a
// race-detector report (this test is the -race workload).
func TestCloseVsReadAtRace(t *testing.T) {
	data := workloads.Base64(400_000, 17)
	for format, comp := range spanFixtures(t, data) {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			full := filepath.Join(dir, "race."+format.String())
			if err := os.WriteFile(full, comp, 0o644); err != nil {
				t.Fatal(err)
			}
			a, err := Open(full, WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}

			const readers = 8
			var wg sync.WaitGroup
			errC := make(chan error, readers)
			start := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(r)))
					buf := make([]byte, 1024)
					<-start
					for {
						off := rng.Int63n(int64(len(data) - len(buf)))
						if _, err := a.ReadAt(buf, off); err != nil {
							errC <- err
							return
						}
					}
				}(r)
			}
			close(start)
			// Let the readers actually get in flight before closing.
			probe := make([]byte, 64)
			a.ReadAt(probe, 0)
			if err := a.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			wg.Wait()
			close(errC)
			for err := range errC {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("reader error not ErrClosed: %v", err)
				}
			}
		})
	}
}
