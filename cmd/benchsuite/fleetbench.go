package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/benchfmt"
	"repro/internal/server"
	"repro/internal/workloads/fleet"
)

// fleetSize is the archive count of the small-fleet serving rows —
// thousands of KB-scale mixed-format files, far more than the handle
// cache holds, so the measurement is dominated by the open path.
const fleetSize = 2000

// fleetRows measures rgzserve over a fleet of small archives, the
// opposite regime of rgzserve-readat-rps's one big archive: every
// request likely evicts and reopens a handle, so MB/s is governed by
// cold-open cost, admission and the handle cache rather than span
// decode speed. Two rows bracket the warm-up subsystem:
//
//	rgzserve-smallfleet-rps       warm-up off, every reopen re-sizes
//	rgzserve-smallfleet-warm-rps  index store primed through the
//	                              warm-up workers first; reopens are
//	                              metadata-only index imports
//
// The gap between them is the warm-up payoff as a tracked number.
func fleetRows(repeats int, coreCounts []int, suffixed bool) ([]benchfmt.Result, error) {
	dir, err := os.MkdirTemp("", "benchsuite-fleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	files, err := fleet.Write(dir, fleetSize, 97)
	if err != nil {
		return nil, err
	}
	store, err := os.MkdirTemp("", "benchsuite-fleetidx-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(store)
	if err := primeFleetStore(dir, store, files); err != nil {
		return nil, fmt.Errorf("fleet warm-up priming: %w", err)
	}

	var rows []benchfmt.Result
	for _, variant := range []struct {
		name  string
		store string
	}{
		{name: "rgzserve-smallfleet-rps", store: ""},
		{name: "rgzserve-smallfleet-warm-rps", store: store},
	} {
		for _, threads := range coreCounts {
			res := benchfmt.Result{
				Name:      variant.name,
				Repeats:   repeats,
				Parallel:  threads,
				Format:    "mixed",
				WithIndex: variant.store != "",
			}
			if suffixed {
				res.Name = fmt.Sprintf("%s-p%d", res.Name, threads)
			}
			var samples []float64
			for rep := 0; rep < repeats; rep++ {
				mbps, served, err := fleetOnce(dir, variant.store, files, threads)
				if err != nil {
					res.FailureMsg = err.Error()
					break
				}
				res.OutBytes = served
				samples = append(samples, mbps)
			}
			if len(samples) == repeats {
				_, res.StdDev = meanStd(samples)
				for _, s := range samples {
					res.MBps = max(res.MBps, s)
				}
			}
			rows = append(rows, res)
			fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, P=%d)\n",
				res.Name, res.MBps, res.StdDev, res.Format, threads)
		}
	}
	return rows, nil
}

// primeFleetStore fills the index store the way production would: a
// server with warm-up workers serves a HEAD of every archive, the
// background exports write the sidecars, and the function waits for
// the queue to drain. The bounded warm-up queue drops overflow, so
// archives are touched in passes until every store sidecar exists.
func primeFleetStore(root, store string, files []fleet.File) error {
	s, err := server.New(server.Config{
		Root:          root,
		IndexStore:    store,
		WarmupWorkers: 4,
		Options:       []rapidgzip.Option{rapidgzip.WithParallelism(1)},
	})
	if err != nil {
		return err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	for pass := 0; pass < 50; pass++ {
		missing := 0
		for _, f := range files {
			sidecar := filepath.Join(store, filepath.FromSlash(f.Name)+rapidgzip.IndexSuffix)
			if _, err := os.Stat(sidecar); err == nil {
				continue
			}
			missing++
			resp, err := client.Head(ts.URL + "/archives/" + f.Name)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("HEAD %s: status %d", f.Name, resp.StatusCode)
			}
		}
		if missing == 0 {
			return nil
		}
		if err := waitFleetWarmups(s, 2*time.Minute); err != nil {
			return err
		}
	}
	return fmt.Errorf("fleet store still incomplete after 50 passes")
}

// waitFleetWarmups blocks until every accepted warm-up finished.
func waitFleetWarmups(s *server.Server, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m := s.Metrics()
		if m.WarmupsCompleted+m.WarmupsFailed >= m.WarmupsQueued {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("warm-up queue stuck: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fleetOnce runs one sample: 2×threads workers GET random whole fleet
// files from a fresh server until minSampleTime; the sample is body
// MB/s. Warm-up stays off during measurement either way — the warm
// variant reads the pre-primed store, the cold one re-sizes every
// open, and neither mutates state mid-sample.
func fleetOnce(root, store string, files []fleet.File, threads int) (float64, int, error) {
	s, err := server.New(server.Config{
		Root:          root,
		IndexStore:    store,
		WarmupWorkers: -1,
		PoolBudget:    64 << 20,
		Options:       []rapidgzip.Option{rapidgzip.WithParallelism(threads)},
	})
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * threads}}

	workers := 2 * threads
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*6151 + 11))
			for time.Since(start) < minSampleTime {
				f := files[rng.Intn(len(files))]
				resp, err := client.Get(ts.URL + "/archives/" + f.Name)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("GET %s: status %d", f.Name, resp.StatusCode))
					return
				}
				if !bytes.Equal(got, f.Content) {
					firstErr.CompareAndSwap(nil, fmt.Errorf("GET %s: body mismatch (%d bytes)", f.Name, len(got)))
					return
				}
				total.Add(int64(len(got)))
			}
		}(w)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok {
		return 0, 0, err
	}
	return float64(total.Load()) / 1e6 / sec, int(total.Load()), nil
}
