package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
)

// benchResult is one row of the JSON benchmark output.
type benchResult struct {
	Name       string  `json:"name"`
	Format     string  `json:"format"`
	InBytes    int     `json:"compressed_bytes"`
	OutBytes   int     `json:"uncompressed_bytes"`
	MBps       float64 `json:"mbps"`
	StdDev     float64 `json:"stddev"`
	Repeats    int     `json:"repeats"`
	WithIndex  bool    `json:"with_index,omitempty"`
	Parallel   int     `json:"parallelism"`
	FailureMsg string  `json:"error,omitempty"`
}

// benchReport is the file-level JSON schema.
type benchReport struct {
	Timestamp string        `json:"timestamp"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Results   []benchResult `json:"results"`
}

// writeJSONBench measures whole-file decompression throughput of every
// format through the public Open API on a generated corpus and writes
// the rows as JSON — small and fast enough for a per-PR CI job, stable
// enough in shape to diff across PRs.
func writeJSONBench(path string, corpusBytes, repeats int) error {
	if repeats < 1 {
		repeats = 1
	}
	data := workloads.Base64(corpusBytes, 42)
	threads := runtime.NumCPU()

	type input struct {
		name      string
		comp      []byte
		withIndex bool
		err       error
	}
	var inputs []input

	gz, _, gzErr := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 128 << 10})
	inputs = append(inputs, input{name: "gzip", comp: gz, err: gzErr})
	inputs = append(inputs, input{name: "gzip-index", comp: gz, withIndex: true, err: gzErr})
	bgzf, _, bgzfErr := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	inputs = append(inputs, input{name: "bgzf", comp: bgzf, err: bgzfErr})
	bz, bzErr := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 1 << 20})
	inputs = append(inputs, input{name: "bzip2", comp: bz, err: bzErr})
	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 1 << 20})
	inputs = append(inputs, input{name: "lz4", comp: lz})

	report := benchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    threads,
	}
	for _, in := range inputs {
		res := benchResult{
			Name:      in.name,
			OutBytes:  len(data),
			InBytes:   len(in.comp),
			Repeats:   repeats,
			WithIndex: in.withIndex,
			Parallel:  threads,
		}
		if in.err != nil {
			res.FailureMsg = in.err.Error()
			report.Results = append(report.Results, res)
			continue
		}
		var index []byte
		if in.withIndex {
			index, in.err = buildIndex(in.comp, threads)
			if in.err != nil {
				res.FailureMsg = in.err.Error()
				report.Results = append(report.Results, res)
				continue
			}
		}
		var samples []float64
		var format rapidgzip.Format
		for rep := 0; rep < repeats; rep++ {
			mbps, f, err := runOnce(in.comp, index, threads)
			if err != nil {
				res.FailureMsg = err.Error()
				break
			}
			format = f
			samples = append(samples, mbps)
		}
		if len(samples) == repeats {
			res.Format = format.String()
			res.MBps, res.StdDev = meanStd(samples)
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(os.Stderr, "benchsuite: %-12s %8.1f MB/s ± %.1f (%s)\n", res.Name, res.MBps, res.StdDev, res.Format)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// runOnce decompresses comp once through the public API and returns
// the decompressed throughput in MB/s.
func runOnce(comp, index []byte, threads int) (float64, rapidgzip.Format, error) {
	start := time.Now()
	var a rapidgzip.Archive
	var err error
	if index != nil {
		var r *rapidgzip.Reader
		r, err = rapidgzip.NewBytesReader(comp, rapidgzip.Options{Parallelism: threads})
		if err == nil {
			if err = r.ImportIndex(bytes.NewReader(index)); err == nil {
				a = r
			} else {
				r.Close()
			}
		}
	} else {
		a, err = rapidgzip.OpenBytes(comp, rapidgzip.WithParallelism(threads))
	}
	if err != nil {
		return 0, rapidgzip.FormatUnknown, err
	}
	defer a.Close()
	n, err := io.Copy(io.Discard, a)
	if err != nil {
		return 0, rapidgzip.FormatUnknown, err
	}
	sec := time.Since(start).Seconds()
	return float64(n) / 1e6 / sec, a.Format(), nil
}

// buildIndex exports a seek-point index for comp.
func buildIndex(comp []byte, threads int) ([]byte, error) {
	r, err := rapidgzip.NewBytesReader(comp, rapidgzip.Options{Parallelism: threads})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	if err := r.ExportIndex(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func meanStd(samples []float64) (float64, float64) {
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var variance float64
	for _, s := range samples {
		variance += (s - mean) * (s - mean)
	}
	return mean, math.Sqrt(variance / float64(len(samples)))
}
