package main

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/benchfmt"
	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// writeJSONBench measures whole-file decompression throughput of every
// format through the public Open API on a generated corpus and writes
// the rows as JSON (schema: internal/benchfmt) — small and fast enough
// for a per-PR CI job, and the input of the benchgate regression gate.
//
// coreCounts selects the parallelism sweep; an empty list measures at
// NumCPU only. With more than one entry, row names gain a "-pN"
// suffix so the gate tracks each point separately.
func writeJSONBench(path string, corpusBytes, repeats int, coreCounts []int) error {
	if repeats < 1 {
		repeats = 1
	}
	if len(coreCounts) == 0 {
		coreCounts = []int{runtime.NumCPU()}
	}
	suffixed := len(coreCounts) > 1
	data := workloads.Base64(corpusBytes, 42)

	type input struct {
		name      string
		comp      []byte
		withIndex bool
		err       error
	}
	var inputs []input

	gz, _, gzErr := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 128 << 10})
	inputs = append(inputs, input{name: "gzip", comp: gz, err: gzErr})
	inputs = append(inputs, input{name: "gzip-index", comp: gz, withIndex: true, err: gzErr})
	bgzf, _, bgzfErr := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	inputs = append(inputs, input{name: "bgzf", comp: bgzf, err: bgzfErr})
	bz, bzErr := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 1 << 20})
	inputs = append(inputs, input{name: "bzip2", comp: bz, err: bzErr})
	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 1 << 20})
	inputs = append(inputs, input{name: "lz4", comp: lz})
	// Multi-frame zstd is §4.9's trivially parallelizable shape; the
	// single-frame row shows what the same bytes cost without it.
	zsMulti := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 1 << 20, ContentChecksum: true})
	inputs = append(inputs, input{name: "zstd", comp: zsMulti})
	zsSingle := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, ContentChecksum: true})
	inputs = append(inputs, input{name: "zstd-1frame", comp: zsSingle})

	report := benchfmt.Report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	// Cold-open rows: what Open costs before the first byte is served,
	// with and without a sibling RGZIDX04 checkpoint-table index. The
	// formats measured are the ones whose cold open does real work —
	// bzip2 sizes by decoding the whole file, unsized zstd by a
	// sequential decode of every frame — so the -index variants show
	// the span-engine payoff directly.
	openRows, err := coldOpenRows(data, bz, bzErr, repeats, coreCounts, suffixed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, openRows...)
	// File-backed cold ReadAt: Open(path) with no index, then read the
	// whole decompressed stream positionally — the path where the
	// compressed file stays on disk and every span decode is a pread.
	// LZ4 isolates the pread-per-span cost (its open is a pure header
	// walk); gzip exercises the speculative chunk pipeline on the same
	// file-backed path it now shares with the other formats.
	fbRows, err := fileBackedRows(data, []fileBackedInput{
		{name: "lz4-filebacked-readat", ext: ".lz4", comp: lz, err: nil},
		{name: "gzip-filebacked-readat", ext: ".gz", comp: gz, err: gzErr},
	}, repeats, coreCounts, suffixed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, fbRows...)
	// HTTP range serving: rgzserve's whole request path (handle cache,
	// shared pool, range grammar, ReadAt fan-out) as one throughput row.
	serveRows, err := serveReadAtRows(lz, len(data), repeats, coreCounts, suffixed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, serveRows...)
	// Small-fleet serving: thousands of KB-scale archives through a
	// 64-handle cache, with and without a warm-up-primed index store —
	// the open path (admission, classification, index import) as a
	// number, and the warm-up payoff as the gap between the two rows.
	fleetRowsOut, err := fleetRows(repeats, coreCounts, suffixed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, fleetRowsOut...)
	// The write side: sharded parallel compression throughput at one and
	// four workers (the -w4 row is the scaling evidence — shards are
	// independent, so it should run well past 1.5x the -w1 row), plus the
	// create-then-open row that times a cold reopen of a Create-produced
	// archive with its sidecar — the born-seekable claim as a number.
	compRows, err := compressRows(data, repeats)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, compRows...)
	ctoRows, err := createThenOpenRows(data, repeats)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, ctoRows...)
	for _, in := range inputs {
		for _, threads := range coreCounts {
			res := benchfmt.Result{
				Name:      in.name,
				OutBytes:  len(data),
				InBytes:   len(in.comp),
				Repeats:   repeats,
				WithIndex: in.withIndex,
				Parallel:  threads,
			}
			if suffixed {
				res.Name = fmt.Sprintf("%s-p%d", in.name, threads)
			}
			if in.err != nil {
				res.FailureMsg = in.err.Error()
				report.Results = append(report.Results, res)
				continue
			}
			var index []byte
			var err error
			if in.withIndex {
				index, err = buildIndex(in.comp, threads)
				if err != nil {
					res.FailureMsg = err.Error()
					report.Results = append(report.Results, res)
					continue
				}
			}
			var samples []float64
			var format rapidgzip.Format
			for rep := 0; rep < repeats; rep++ {
				mbps, f, err := runOnce(in.comp, index, threads)
				if err != nil {
					res.FailureMsg = err.Error()
					break
				}
				format = f
				samples = append(samples, mbps)
			}
			if len(samples) == repeats {
				res.Format = format.String()
				// The gate compares best-of-repeats: scheduler noise only
				// ever slows a run down, so the fastest sample is the
				// stablest estimate of what the code can do. The stddev
				// of the whole sample set still records the spread.
				_, res.StdDev = meanStd(samples)
				for _, s := range samples {
					res.MBps = max(res.MBps, s)
				}
			}
			report.Results = append(report.Results, res)
			fmt.Fprintf(os.Stderr, "benchsuite: %-14s %8.1f MB/s ± %.1f (%s, P=%d)\n",
				res.Name, res.MBps, res.StdDev, res.Format, threads)
		}
	}
	return benchfmt.Save(path, report)
}

// coldOpenRows measures Open throughput (MB/s of eventual uncompressed
// content per second of open time) for the sizing-pass formats, cold
// and with an exported index.
func coldOpenRows(data, bz []byte, bzErr error, repeats int, coreCounts []int, suffixed bool) ([]benchfmt.Result, error) {
	zsUnsized := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 1 << 20, OmitContentSize: true})
	type openInput struct {
		name      string
		comp      []byte
		withIndex bool
		err       error
	}
	inputs := []openInput{
		{name: "bzip2-coldopen", comp: bz, err: bzErr},
		{name: "bzip2-coldopen-index", comp: bz, withIndex: true, err: bzErr},
		{name: "zstd-unsized-coldopen", comp: zsUnsized},
		{name: "zstd-unsized-coldopen-index", comp: zsUnsized, withIndex: true},
	}
	var rows []benchfmt.Result
	for _, in := range inputs {
		for _, threads := range coreCounts {
			res := benchfmt.Result{
				Name:      in.name,
				OutBytes:  len(data),
				InBytes:   len(in.comp),
				Repeats:   repeats,
				WithIndex: in.withIndex,
				Parallel:  threads,
			}
			if suffixed {
				res.Name = fmt.Sprintf("%s-p%d", in.name, threads)
			}
			if in.err != nil {
				res.FailureMsg = in.err.Error()
				rows = append(rows, res)
				continue
			}
			var ixPath string
			if in.withIndex {
				path, err := exportIndexFile(in.comp, threads)
				if err != nil {
					res.FailureMsg = err.Error()
					rows = append(rows, res)
					continue
				}
				ixPath = path
			}
			var samples []float64
			var format rapidgzip.Format
			for rep := 0; rep < repeats; rep++ {
				mbps, f, err := openOnce(in.comp, len(data), ixPath, threads)
				if err != nil {
					res.FailureMsg = err.Error()
					break
				}
				format = f
				samples = append(samples, mbps)
			}
			if ixPath != "" {
				os.Remove(ixPath)
			}
			if len(samples) == repeats {
				res.Format = format.String()
				_, res.StdDev = meanStd(samples)
				for _, s := range samples {
					res.MBps = max(res.MBps, s)
				}
			}
			rows = append(rows, res)
			fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, P=%d)\n",
				res.Name, res.MBps, res.StdDev, res.Format, threads)
		}
	}
	return rows, nil
}

// compressRows measures parallel compression throughput (MB/s of
// uncompressed input consumed) through the public NewWriter API for the
// two sharded encoders, each at one and at four workers. The fixed
// worker counts — rather than the coreCounts sweep — keep the w1/w4
// pair present in every report, so the scaling ratio is always
// checkable against the acceptance floor.
func compressRows(data []byte, repeats int) ([]benchfmt.Result, error) {
	type compressInput struct {
		name   string
		format rapidgzip.Format
		level  int
	}
	inputs := []compressInput{
		// Level 6 matches the gzip decode rows' corpus; level 1 matches
		// the zstd decode rows.
		{name: "gzip-parallel-compress", format: rapidgzip.FormatGzip, level: 6},
		{name: "zstd-parallel-compress", format: rapidgzip.FormatZstd, level: 1},
	}
	workerCounts := []int{1, 4}
	var rows []benchfmt.Result
	for _, in := range inputs {
		results := make([]benchfmt.Result, len(workerCounts))
		samples := make([][]float64, len(workerCounts))
		for wi, workers := range workerCounts {
			results[wi] = benchfmt.Result{
				Name:     fmt.Sprintf("%s-w%d", in.name, workers),
				OutBytes: len(data),
				Repeats:  repeats,
				Parallel: workers,
			}
		}
		// Interleave the worker counts within each repeat rather than
		// finishing one row before starting the next: on shared
		// machines throughput drifts on a seconds-to-minutes scale, and
		// back-to-back sampling keeps the w1/w4 pair — whose ratio is
		// the scaling evidence — inside the same machine state.
		for rep := 0; rep < repeats; rep++ {
			for wi, workers := range workerCounts {
				if results[wi].FailureMsg != "" {
					continue
				}
				mbps, compLen, err := compressOnce(data, in.format, in.level, workers)
				if err != nil {
					results[wi].FailureMsg = err.Error()
					continue
				}
				results[wi].InBytes = compLen
				samples[wi] = append(samples[wi], mbps)
			}
		}
		// Report the whole pair from the single least-throttled repeat
		// (maximum combined throughput) instead of taking each row's
		// independent best: per-row maxima can come from different
		// machine states, which turns the w1/w4 ratio into a comparison
		// of two unrelated throttle windows.
		bestRep, bestSum := -1, 0.0
		for rep := 0; rep < repeats; rep++ {
			sum := 0.0
			ok := true
			for wi := range workerCounts {
				if rep >= len(samples[wi]) {
					ok = false
					break
				}
				sum += samples[wi][rep]
			}
			if ok && sum > bestSum {
				bestRep, bestSum = rep, sum
			}
		}
		for wi, workers := range workerCounts {
			res := &results[wi]
			if len(samples[wi]) == repeats && bestRep >= 0 {
				res.Format = in.format.String()
				_, res.StdDev = meanStd(samples[wi])
				res.MBps = samples[wi][bestRep]
			}
			rows = append(rows, *res)
			fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, W=%d)\n",
				res.Name, res.MBps, res.StdDev, res.Format, workers)
		}
	}
	return rows, nil
}

// compressOnce measures one compression throughput sample, repeating
// whole-corpus encodes until compressSampleTime — deliberately longer
// than minSampleTime, because one whole-corpus encode alone is long
// enough to "satisfy" the floor while still being a single draw from a
// noisy scheduler, and the w1/w4 ratio is gated on these rows. The
// forced collection decouples the sample from whatever garbage the
// preceding rows left behind — without it the GC debt of a decode row
// can land mid-encode and skew the pair it happens to hit.
func compressOnce(data []byte, format rapidgzip.Format, level, workers int) (float64, int, error) {
	runtime.GC()
	const compressSampleTime = 4 * minSampleTime
	var total int64
	var compLen int
	start := time.Now()
	for {
		var sink countingWriter
		w, err := rapidgzip.NewWriter(&sink,
			rapidgzip.WithWriterFormat(format),
			rapidgzip.WithWriterParallelism(workers),
			rapidgzip.WithLevel(level))
		if err != nil {
			return 0, 0, err
		}
		if _, err := w.Write(data); err != nil {
			return 0, 0, err
		}
		if err := w.Close(); err != nil {
			return 0, 0, err
		}
		compLen = int(sink.n)
		sink.n = 0
		total += int64(len(data))
		if time.Since(start) >= compressSampleTime {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(total) / 1e6 / sec, compLen, nil
}

// countingWriter discards its input, keeping only the byte count.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// createThenOpenRows times the cold reopen of an archive Create just
// produced: the sidecar is auto-discovered, so Open must import the
// checkpoint table and be ready to serve — zero sizing passes — and the
// row's MB/s is the eventual output per second of that open. It is the
// counter-asserted acceptance scenario as a tracked number.
func createThenOpenRows(data []byte, repeats int) ([]benchfmt.Result, error) {
	threads := runtime.NumCPU()
	dir, err := os.MkdirTemp("", "benchsuite-create")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/corpus.gz"
	w, err := rapidgzip.Create(path, rapidgzip.WithWriterParallelism(threads))
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	compLen := int(w.Stats().CompressedBytes)

	res := benchfmt.Result{
		Name:      "create-then-open",
		OutBytes:  len(data),
		InBytes:   compLen,
		Repeats:   repeats,
		WithIndex: true,
		Parallel:  threads,
	}
	var samples []float64
	for rep := 0; rep < repeats; rep++ {
		mbps, err := createThenOpenOnce(path, len(data), threads)
		if err != nil {
			res.FailureMsg = err.Error()
			break
		}
		samples = append(samples, mbps)
	}
	if len(samples) == repeats {
		res.Format = rapidgzip.FormatGzip.String()
		_, res.StdDev = meanStd(samples)
		for _, s := range samples {
			res.MBps = max(res.MBps, s)
		}
	}
	fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, P=%d)\n",
		res.Name, res.MBps, res.StdDev, res.Format, threads)
	return []benchfmt.Result{res}, nil
}

// createThenOpenOnce measures one cold-reopen sample, repeated until
// minSampleTime; it fails if any reopen needed a sizing pass.
func createThenOpenOnce(path string, outBytes, threads int) (float64, error) {
	var total int64
	start := time.Now()
	for {
		a, err := rapidgzip.Open(path, rapidgzip.WithParallelism(threads))
		if err != nil {
			return 0, err
		}
		sizing := a.Stats().SizingPasses
		a.Close()
		if sizing != 0 {
			return 0, fmt.Errorf("create-then-open took %d sizing passes, want 0", sizing)
		}
		total += int64(outBytes)
		if time.Since(start) >= minSampleTime {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(total) / 1e6 / sec, nil
}

// fileBackedInput is one corpus for the file-backed cold-ReadAt rows.
type fileBackedInput struct {
	name string
	ext  string
	comp []byte
	err  error
}

// fileBackedRows measures the file-backed cold ReadAt path: each corpus
// is written to a real temp file, opened without an index, and the
// decompressed stream is read positionally in 1 MiB slices — every span
// decode preads its own compressed extent from disk.
func fileBackedRows(data []byte, inputs []fileBackedInput, repeats int, coreCounts []int, suffixed bool) ([]benchfmt.Result, error) {
	var rows []benchfmt.Result
	for _, in := range inputs {
		if in.err != nil {
			for _, threads := range coreCounts {
				res := benchfmt.Result{
					Name:       in.name,
					OutBytes:   len(data),
					Repeats:    repeats,
					Parallel:   threads,
					FailureMsg: in.err.Error(),
				}
				if suffixed {
					res.Name = fmt.Sprintf("%s-p%d", res.Name, threads)
				}
				rows = append(rows, res)
			}
			continue
		}
		f, err := os.CreateTemp("", "benchsuite-*"+in.ext)
		if err != nil {
			return nil, err
		}
		path := f.Name()
		_, err = f.Write(in.comp)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
			return nil, err
		}
		for _, threads := range coreCounts {
			res := benchfmt.Result{
				Name:     in.name,
				OutBytes: len(data),
				InBytes:  len(in.comp),
				Repeats:  repeats,
				Parallel: threads,
			}
			if suffixed {
				res.Name = fmt.Sprintf("%s-p%d", res.Name, threads)
			}
			var samples []float64
			var format rapidgzip.Format
			for rep := 0; rep < repeats; rep++ {
				mbps, f, err := fileBackedReadAtOnce(path, len(data), threads)
				if err != nil {
					res.FailureMsg = err.Error()
					break
				}
				format = f
				samples = append(samples, mbps)
			}
			if len(samples) == repeats {
				res.Format = format.String()
				_, res.StdDev = meanStd(samples)
				for _, s := range samples {
					res.MBps = max(res.MBps, s)
				}
			}
			rows = append(rows, res)
			fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, P=%d)\n",
				res.Name, res.MBps, res.StdDev, res.Format, threads)
		}
		os.Remove(path)
	}
	return rows, nil
}

// fileBackedReadAtOnce measures one cold open-and-ReadAt sweep over the
// file at path, repeated until minSampleTime.
func fileBackedReadAtOnce(path string, outBytes, threads int) (float64, rapidgzip.Format, error) {
	var total int64
	var format rapidgzip.Format
	buf := make([]byte, 1<<20)
	start := time.Now()
	for {
		a, err := rapidgzip.Open(path, rapidgzip.WithParallelism(threads), rapidgzip.WithoutIndexDiscovery())
		if err != nil {
			return 0, rapidgzip.FormatUnknown, err
		}
		format = a.Format()
		var off int64
		for off < int64(outBytes) {
			n, err := a.ReadAt(buf, off)
			if n > 0 {
				off += int64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				a.Close()
				return 0, rapidgzip.FormatUnknown, err
			}
		}
		a.Close()
		if off != int64(outBytes) {
			return 0, rapidgzip.FormatUnknown, fmt.Errorf("file-backed ReadAt consumed %d of %d bytes", off, outBytes)
		}
		total += off
		if time.Since(start) >= minSampleTime {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(total) / 1e6 / sec, format, nil
}

// openOnce measures one cold-open throughput sample: eventual output
// bytes divided by the time Open (and Close) takes, repeated until
// minSampleTime — the open itself serves no content.
func openOnce(comp []byte, outBytes int, ixPath string, threads int) (float64, rapidgzip.Format, error) {
	opts := []rapidgzip.Option{rapidgzip.WithParallelism(threads)}
	if ixPath != "" {
		opts = append(opts, rapidgzip.WithIndexFile(ixPath))
	}
	var total int64
	var format rapidgzip.Format
	start := time.Now()
	for {
		a, err := rapidgzip.OpenBytes(comp, opts...)
		if err != nil {
			return 0, rapidgzip.FormatUnknown, err
		}
		format = a.Format()
		a.Close()
		total += int64(outBytes)
		if time.Since(start) >= minSampleTime {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(total) / 1e6 / sec, format, nil
}

// exportIndexFile opens comp cold, exports its checkpoint-table index
// to a temp file, and returns the path.
func exportIndexFile(comp []byte, threads int) (string, error) {
	a, err := rapidgzip.OpenBytes(comp, rapidgzip.WithParallelism(threads))
	if err != nil {
		return "", err
	}
	defer a.Close()
	f, err := os.CreateTemp("", "benchsuite-*.rgzidx")
	if err != nil {
		return "", err
	}
	err = a.ExportIndex(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}

// minSampleTime is the floor for one throughput sample: fast formats
// (LZ4 chews 32 MiB in tens of milliseconds) repeat the decode until
// the clock has something real to measure, or scheduler noise swamps
// the number and the regression gate turns flaky.
const minSampleTime = 300 * time.Millisecond

// runOnce measures one decompression throughput sample (MB/s of
// decompressed output) through the public API, decoding as many times
// as minSampleTime requires.
func runOnce(comp, index []byte, threads int) (float64, rapidgzip.Format, error) {
	var total int64
	var format rapidgzip.Format
	start := time.Now()
	for {
		var a rapidgzip.Archive
		var err error
		if index != nil {
			var r *rapidgzip.Reader
			r, err = rapidgzip.NewBytesReader(comp, rapidgzip.Options{Parallelism: threads})
			if err == nil {
				if err = r.ImportIndex(bytes.NewReader(index)); err == nil {
					a = r
				} else {
					r.Close()
				}
			}
		} else {
			a, err = rapidgzip.OpenBytes(comp, rapidgzip.WithParallelism(threads))
		}
		if err != nil {
			return 0, rapidgzip.FormatUnknown, err
		}
		n, err := io.Copy(io.Discard, a)
		format = a.Format()
		a.Close()
		if err != nil {
			return 0, rapidgzip.FormatUnknown, err
		}
		total += n
		if time.Since(start) >= minSampleTime {
			break
		}
	}
	sec := time.Since(start).Seconds()
	return float64(total) / 1e6 / sec, format, nil
}

// buildIndex exports a seek-point index for comp.
func buildIndex(comp []byte, threads int) ([]byte, error) {
	r, err := rapidgzip.NewBytesReader(comp, rapidgzip.Options{Parallelism: threads})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	if err := r.ExportIndex(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func meanStd(samples []float64) (float64, float64) {
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var variance float64
	for _, s := range samples {
		variance += (s - mean) * (s - mean)
	}
	return mean, math.Sqrt(variance / float64(len(samples)))
}
