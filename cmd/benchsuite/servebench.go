package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/benchfmt"
	"repro/internal/server"
)

// serveReadAtRows measures rgzserve's request path end to end: an
// in-process HTTP server over a file-backed archive, hammered with
// concurrent ranged GETs. The row's MB/s is decompressed body bytes
// served per second — it covers the handle cache, the shared span-cache
// pool, range parsing and the ReadAt fan-out together, so a regression
// in any of those layers moves the number.
func serveReadAtRows(comp []byte, outBytes, repeats int, coreCounts []int, suffixed bool) ([]benchfmt.Result, error) {
	dir, err := os.MkdirTemp("", "benchsuite-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "corpus.lz4"), comp, 0o644); err != nil {
		return nil, err
	}
	var rows []benchfmt.Result
	for _, threads := range coreCounts {
		res := benchfmt.Result{
			Name:     "rgzserve-readat-rps",
			OutBytes: outBytes,
			InBytes:  len(comp),
			Repeats:  repeats,
			Parallel: threads,
			Format:   "lz4",
		}
		if suffixed {
			res.Name = fmt.Sprintf("%s-p%d", res.Name, threads)
		}
		var samples []float64
		for rep := 0; rep < repeats; rep++ {
			mbps, err := serveReadAtOnce(dir, outBytes, threads)
			if err != nil {
				res.FailureMsg = err.Error()
				break
			}
			samples = append(samples, mbps)
		}
		if len(samples) == repeats {
			_, res.StdDev = meanStd(samples)
			for _, s := range samples {
				res.MBps = max(res.MBps, s)
			}
		}
		rows = append(rows, res)
		fmt.Fprintf(os.Stderr, "benchsuite: %-27s %8.1f MB/s ± %.1f (%s, P=%d)\n",
			res.Name, res.MBps, res.StdDev, res.Format, threads)
	}
	return rows, nil
}

// serveReadAtOnce runs one sample: 2×threads workers issue random
// 64 KiB ranged GETs against a fresh server until minSampleTime, and
// the sample is body MB/s across all workers.
func serveReadAtOnce(root string, outBytes, threads int) (float64, error) {
	s, err := server.New(server.Config{
		Root:       root,
		PoolBudget: 64 << 20,
		Options:    []rapidgzip.Option{rapidgzip.WithParallelism(threads)},
	})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/archives/corpus.lz4"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * threads}}

	// One warm request pays the cold open outside the clock.
	if err := fetchRange(client, url, 0, 1); err != nil {
		return 0, err
	}

	const reqSize = 64 << 10
	workers := 2 * threads
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for time.Since(start) < minSampleTime {
				n := int64(reqSize)
				if n > int64(outBytes) {
					n = int64(outBytes)
				}
				off := rng.Int63n(int64(outBytes) - n + 1)
				if err := fetchRange(client, url, off, n); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				total.Add(n)
			}
		}(w)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok {
		return 0, err
	}
	return float64(total.Load()) / 1e6 / sec, nil
}

// fetchRange GETs [off, off+n) and fully drains the body.
func fetchRange(client *http.Client, url string, off, n int64) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	got, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusPartialContent {
		return fmt.Errorf("ranged GET: status %d, want 206", resp.StatusCode)
	}
	if got != n {
		return fmt.Errorf("ranged GET: %d body bytes, want %d", got, n)
	}
	return nil
}
