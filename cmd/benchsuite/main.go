// Command benchsuite regenerates the paper's evaluation tables and
// figures (§4) on the local machine:
//
//	benchsuite -exp all
//	benchsuite -exp fig9 -bytes-per-core 16M -cores 1,2,4,8,16 -repeats 5
//	benchsuite -exp table1 -positions 1000000000
//
// Output is plain text in the row layout of the corresponding paper
// table/figure. EXPERIMENTS.md records a reference run.
//
// With -json FILE the suite instead runs the quick cross-format
// benchmark (gzip, BGZF, bzip2, LZ4 through the public Open API on a
// generated corpus) and writes machine-readable results — the per-PR
// performance trajectory CI accumulates.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7|fig8|fig9|fig10|fig11|fig12|table1|table2|table3|table4|all")
	bytesPerCore := flag.String("bytes-per-core", "4M", "uncompressed workload per core for scaling figures")
	fig12Bytes := flag.String("fig12-bytes", "96M", "fixed workload for the chunk-size sweep")
	coresStr := flag.String("cores", "", "comma-separated parallelism sweep (default 1,2,4,... up to NumCPU)")
	repeats := flag.Int("repeats", 3, "measurements per cell")
	positions := flag.Uint64("positions", 20_000_000, "bit positions for the table 1 funnel")
	jsonOut := flag.String("json", "", "write quick cross-format benchmark results as JSON to this file (skips the paper experiments)")
	jsonBytes := flag.String("json-bytes", "32M", "uncompressed corpus size for the -json benchmark")
	jsonCores := flag.String("json-cores", "", "comma-separated parallelism sweep for the -json benchmark (default: NumCPU only; rows gain a -pN suffix when several)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	if *jsonOut != "" {
		n, err := parseSize(*jsonBytes)
		if err != nil {
			fatal(err)
		}
		var cores []int
		if *jsonCores != "" {
			for _, f := range strings.Split(*jsonCores, ",") {
				c, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || c < 1 {
					fatal(fmt.Errorf("bad -json-cores: %q", f))
				}
				cores = append(cores, c)
			}
		}
		if err := writeJSONBench(*jsonOut, n, *repeats, cores); err != nil {
			fatal(err)
		}
		return
	}

	bpc, err := parseSize(*bytesPerCore)
	if err != nil {
		fatal(err)
	}
	f12, err := parseSize(*fig12Bytes)
	if err != nil {
		fatal(err)
	}
	var cores []int
	if *coresStr != "" {
		for _, f := range strings.Split(*coresStr, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal(fmt.Errorf("bad -cores: %w", err))
			}
			cores = append(cores, c)
		}
	}
	cfg := experiments.Config{
		Out:             os.Stdout,
		Cores:           cores,
		BytesPerCore:    bpc,
		Fig12Bytes:      f12,
		Table1Positions: *positions,
		Repeats:         *repeats,
	}
	if err := experiments.ByName(*exp, cfg); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsuite:", err)
	os.Exit(1)
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
