// Command benchgate is the CI benchmark-regression gate: it compares a
// freshly measured cross-format report (`benchsuite -json`) against the
// checked-in baseline and fails when any format's decompression
// throughput regressed beyond the tolerance.
//
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_PR3.json
//	benchgate -baseline BENCH_BASELINE.json -current new.json -tolerance 10
//	benchgate -baseline BENCH_BASELINE.json -current new.json -update
//
// The exit status is the contract: 0 means every row held (new rows
// are allowed), 1 means at least one row slowed beyond tolerance,
// disappeared, or now errors. -update rewrites the baseline from the
// current report instead of gating — run it when the benchmark
// hardware or the corpus legitimately changes, and commit the result.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "checked-in baseline report")
	currentPath := flag.String("current", "", "freshly measured report to gate")
	tolerance := flag.Float64("tolerance", 25, "maximum allowed per-format slowdown, in percent")
	scalingTol := flag.Float64("scaling-tolerance", 35, "maximum allowed drop of a sweep row's parallel speedup vs baseline, in percent (>=100 disables)")
	update := flag.Bool("update", false, "rewrite the baseline from -current instead of gating")
	flag.Parse()

	if *currentPath == "" {
		fatal(fmt.Errorf("missing -current report"))
	}
	if *tolerance < 0 || *tolerance >= 100 {
		fatal(fmt.Errorf("tolerance %v%% out of range [0, 100)", *tolerance))
	}
	current, err := benchfmt.Load(*currentPath)
	if err != nil {
		fatal(err)
	}
	if *update {
		if err := benchfmt.Save(*baselinePath, current); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s rewritten from %s\n", *baselinePath, *currentPath)
		return
	}
	baseline, err := benchfmt.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}

	tol := *tolerance / 100
	deltas := benchfmt.Compare(baseline, current)
	fmt.Printf("benchgate: %s (cpu=%d) vs baseline %s (cpu=%d), tolerance -%.0f%%\n",
		*currentPath, current.NumCPU, *baselinePath, baseline.NumCPU, *tolerance)
	fmt.Print(benchfmt.FormatTable(deltas, tol))

	regs := benchfmt.Regressions(deltas, tol)
	// Derived parallelism check on sweep reports (-json-cores rows): a
	// format whose widest-run speedup collapses relative to the
	// baseline fails, even if raw throughput stayed inside tolerance.
	if scaling := benchfmt.CompareScaling(baseline, current); len(scaling) > 0 && *scalingTol < 100 {
		stol := *scalingTol / 100
		fmt.Printf("\nparallelism sweep (speedup tolerance -%.0f%%):\n", *scalingTol)
		fmt.Print(benchfmt.FormatScalingTable(scaling, stol))
		regs = append(regs, benchfmt.ScalingRegressions(scaling, stol)...)
	}

	if len(regs) > 0 {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
