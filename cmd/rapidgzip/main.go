// Command rapidgzip decompresses compressed files in parallel,
// mirroring the command-line interface of the paper's tool:
//
//	rapidgzip -P 16 -c big.tar.gz > big.tar
//	rapidgzip -P 16 --export-index big.gzidx big.tar.gz
//	rapidgzip --import-index big.gzidx -c big.tar.gz > big.tar
//	rapidgzip --count-lines big.log.gz
//	rapidgzip -c reads.fastq.bz2 > reads.fastq   # format is sniffed
//	rapidgzip --count-lines logs.tar.zst         # multi-frame zstd in parallel
//	rapidgzip --format lz4 -c blob > blob.out    # ...or forced
//
// With --compress the data flows the other way: the file is compressed
// in parallel shards (gzip by default; --format bgzf or zstd for the
// others) and an .rgzidx sidecar is written next to the output, so the
// archive reopens with zero sizing passes and full random access:
//
//	rapidgzip --compress -P 16 big.tar              # -> big.tar.gz + .rgzidx
//	rapidgzip --compress --format zstd big.tar      # -> big.tar.zst + .rgzidx
//	rapidgzip --compress --level 9 -c big.tar > big.tar.gz   # stdout, no sidecar
//
// The input format (gzip, BGZF, bzip2, LZ4, zstd) is detected from the
// content's magic bytes; --format overrides the detection. A sibling
// "<FILE>.rgzidx" index saved by --export-index is picked up
// automatically on later runs (disable with --no-index-discovery).
//
// Every input format is served file-backed: the compressed file stays
// on disk and each decode preads only the span extents it needs, so
// inputs larger than RAM work (--in-memory restores the old
// load-it-all behavior; --stats prints the pread counters).
//
// With --export-index, the index built during decompression is saved —
// seek points with windows for gzip/BGZF, the checkpoint table for
// bzip2/LZ4/zstd. Importing it later skips the initial pass: for gzip
// that doubles throughput (no two-stage decoding) and balances the
// workload; for the span-engine formats it eliminates the sizing pass
// (for bzip2, a full decode of the file) before the first byte is
// served.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rapidgzip:", err)
		os.Exit(1)
	}
}

// outSuffixes maps a detected format to the extensions stripped from
// the input name to derive the default output name.
var outSuffixes = map[rapidgzip.Format][]string{
	rapidgzip.FormatGzip:  {".gz", ".gzip"},
	rapidgzip.FormatBGZF:  {".gz", ".bgz", ".bgzf"},
	rapidgzip.FormatBzip2: {".bz2", ".bzip2"},
	rapidgzip.FormatLZ4:   {".lz4"},
	rapidgzip.FormatZstd:  {".zst", ".zstd"},
}

func run() error {
	parallel := flag.Int("P", runtime.NumCPU(), "decompression threads")
	chunkSize := flag.Int("chunk-size", 4<<20, "compressed bytes per chunk")
	toStdout := flag.Bool("c", false, "write to standard output")
	outPath := flag.String("o", "", "output file (default: input minus its compression suffix)")
	verify := flag.Bool("verify", false, "verify gzip CRC32 checksums")
	countLines := flag.Bool("count-lines", false, "count newlines instead of writing output")
	exportIndex := flag.String("export-index", "", "write the seek-point index to this file")
	importIndex := flag.String("import-index", "", "load a seek-point index from this file")
	formatName := flag.String("format", "auto", "input format: auto, gzip, bgzf, bzip2, lz4 or zstd")
	noDiscovery := flag.Bool("no-index-discovery", false, "do not auto-import a sibling .rgzidx index")
	inMemory := flag.Bool("in-memory", false, "load the whole compressed file into memory instead of serving it file-backed")
	stats := flag.Bool("stats", false, "print fetcher statistics to stderr")
	compress := flag.Bool("compress", false, "compress FILE instead of decompressing it")
	level := flag.Int("level", -1, "compression level 0-9 (--compress only; default 6)")
	shardSize := flag.Int("shard-size", 0, "uncompressed bytes compressed independently per shard (--compress only; default 1 MiB)")
	noSidecar := flag.Bool("no-index", false, "do not write the .rgzidx sidecar next to the output (--compress only)")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: rapidgzip [flags] FILE (see -h)")
	}
	path := flag.Arg(0)

	if *compress {
		return runCompress(path, *formatName, *outPath, *toStdout, *parallel, *level, *shardSize, *noSidecar, *stats)
	}

	format, err := rapidgzip.ParseFormat(*formatName)
	if err != nil {
		return err
	}
	opts := []rapidgzip.Option{
		rapidgzip.WithParallelism(*parallel),
		rapidgzip.WithChunkSize(*chunkSize),
		rapidgzip.WithVerify(*verify),
	}
	if format != rapidgzip.FormatUnknown {
		opts = append(opts, rapidgzip.WithFormat(format))
	}
	if *importIndex != "" {
		opts = append(opts, rapidgzip.WithIndexFile(*importIndex))
	}
	if *noDiscovery {
		opts = append(opts, rapidgzip.WithoutIndexDiscovery())
	}
	if *inMemory {
		opts = append(opts, rapidgzip.WithInMemory())
	}
	r, err := rapidgzip.Open(path, opts...)
	if err != nil {
		return err
	}
	defer r.Close()

	if *exportIndex != "" && !r.Capabilities().Index {
		return fmt.Errorf("%v files have no exportable seek-point index", r.Format())
	}

	var out io.Writer
	switch {
	case *countLines:
		out = io.Discard
	case *toStdout:
		out = os.Stdout
	default:
		p := *outPath
		if p == "" {
			for _, suffix := range outSuffixes[r.Format()] {
				if trimmed := strings.TrimSuffix(path, suffix); trimmed != path {
					p = trimmed
					break
				}
			}
			if p == "" {
				p = path + ".out"
			}
		}
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var lines int64
	if *countLines {
		out = &lineCounter{n: &lines}
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	n, err := io.Copy(bw, r)
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	if *countLines {
		fmt.Println(lines)
	}
	if *verify {
		if gz, ok := r.(*rapidgzip.Reader); ok {
			if ok, fails := gz.CRCVerified(); !ok || fails > 0 {
				return fmt.Errorf("CRC verification failed (%d mismatches)", fails)
			}
			fmt.Fprintln(os.Stderr, "rapidgzip: checksums OK")
		} else if r.Capabilities().Verify {
			// bzip2/LZ4/zstd verify inline during decode: reaching here
			// means every checksum already passed.
			fmt.Fprintln(os.Stderr, "rapidgzip: checksums OK")
		} else {
			fmt.Fprintf(os.Stderr, "rapidgzip: %v input carries no checksums; nothing verified\n", r.Format())
		}
	}
	if *exportIndex != "" {
		f, err := os.Create(*exportIndex)
		if err != nil {
			return err
		}
		err = r.ExportIndex(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if *stats {
		// Every format runs on the shared span engine now, so the engine
		// counters (including the pread counters that prove the input was
		// served file-backed) are meaningful for all of them; gzip/BGZF
		// add a second line for their speculative chunk pipeline.
		s := r.Stats()
		fmt.Fprintf(os.Stderr, "decompressed %d bytes (%s); sizingPasses=%d sizingDecodes=%d spanDecodes=%d prefetchIssued=%d prefetchJoined=%d cacheHits=%d cacheMisses=%d evictions=%d preads=%d preadBytes=%d\n",
			n, r.Format(), s.SizingPasses, s.SizingDecodes, s.SpanDecodes, s.PrefetchIssued, s.PrefetchJoined, s.SpanCacheHits, s.SpanCacheMisses, s.SpanCacheEvictions, s.SourceReads, s.SourceBytesRead)
		switch r.Format() {
		case rapidgzip.FormatGzip, rapidgzip.FormatBGZF:
			fmt.Fprintf(os.Stderr, "gzip pipeline: chunks=%d speculative=%d finderProbes=%d noBlock=%d falseStarts=%d onDemand=%d indexed=%d delegated=%d\n",
				s.ChunksConsumed, s.GuessTasks, s.FinderProbes, s.GuessNoBlock, s.GuessFalseStarts, s.OnDemandDecodes, s.IndexedDecodes, s.DelegatedDecodes)
		}
	}
	return nil
}

// compressSuffixes maps a writer format to the extension appended to
// the input name to derive the default output name.
var compressSuffixes = map[rapidgzip.Format]string{
	rapidgzip.FormatGzip: ".gz",
	rapidgzip.FormatBGZF: ".bgz",
	rapidgzip.FormatZstd: ".zst",
}

// runCompress is the write side of the CLI: it shards FILE across -P
// workers into gzip, BGZF or zstd output and (unless writing to stdout
// or told otherwise) drops the .rgzidx sidecar that makes the very
// first reopen sizing-free.
func runCompress(path, formatName, outPath string, toStdout bool, parallel, level, shardSize int, noSidecar, stats bool) error {
	format, err := rapidgzip.ParseFormat(formatName)
	if err != nil {
		return err
	}
	var wopts []rapidgzip.WriterOption
	if format != rapidgzip.FormatUnknown {
		wopts = append(wopts, rapidgzip.WithWriterFormat(format))
	}
	wopts = append(wopts, rapidgzip.WithWriterParallelism(parallel))
	if level >= 0 {
		wopts = append(wopts, rapidgzip.WithLevel(level))
	}
	if shardSize > 0 {
		wopts = append(wopts, rapidgzip.WithShardSize(shardSize))
	}
	if noSidecar {
		wopts = append(wopts, rapidgzip.WithoutIndexSidecar())
	}

	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()

	var w rapidgzip.Writer
	var flushOut *bufio.Writer
	if toStdout {
		// Stdout is not seekable and has no sibling path, so no sidecar.
		flushOut = bufio.NewWriterSize(os.Stdout, 1<<20)
		w, err = rapidgzip.NewWriter(flushOut, wopts...)
	} else {
		p := outPath
		if p == "" {
			suffix := compressSuffixes[format]
			if suffix == "" {
				suffix = ".gz" // --format auto compresses to gzip
			}
			p = path + suffix
		}
		w, err = rapidgzip.Create(p, wopts...)
	}
	if err != nil {
		return err
	}
	n, err := w.ReadFrom(bufio.NewReaderSize(in, 1<<20))
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if flushOut != nil {
		if err := flushOut.Flush(); err != nil {
			return err
		}
	}
	if stats {
		s := w.Stats()
		fmt.Fprintf(os.Stderr, "compressed %d bytes (%s) into %d bytes across %d shards (%.2fx)\n",
			n, w.Format(), s.CompressedBytes, s.Shards,
			float64(s.UncompressedBytes)/float64(max(s.CompressedBytes, 1)))
	}
	return nil
}

// lineCounter counts newlines flowing through it.
type lineCounter struct{ n *int64 }

func (l *lineCounter) Write(p []byte) (int, error) {
	*l.n += int64(bytes.Count(p, []byte{'\n'}))
	return len(p), nil
}
