// Command rapidgzip decompresses gzip files in parallel, mirroring the
// command-line interface of the paper's tool:
//
//	rapidgzip -P 16 -c big.tar.gz > big.tar
//	rapidgzip -P 16 --export-index big.gzidx big.tar.gz
//	rapidgzip --import-index big.gzidx -c big.tar.gz > big.tar
//	rapidgzip --count-lines big.log.gz
//
// With --export-index, the seek-point index built during decompression
// is saved; importing it later skips the initial pass, doubles
// throughput (no two-stage decoding) and balances the workload.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rapidgzip:", err)
		os.Exit(1)
	}
}

func run() error {
	parallel := flag.Int("P", runtime.NumCPU(), "decompression threads")
	chunkSize := flag.Int("chunk-size", 4<<20, "compressed bytes per chunk")
	toStdout := flag.Bool("c", false, "write to standard output")
	outPath := flag.String("o", "", "output file (default: input minus .gz)")
	verify := flag.Bool("verify", false, "verify gzip CRC32 checksums")
	countLines := flag.Bool("count-lines", false, "count newlines instead of writing output")
	exportIndex := flag.String("export-index", "", "write the seek-point index to this file")
	importIndex := flag.String("import-index", "", "load a seek-point index from this file")
	stats := flag.Bool("stats", false, "print fetcher statistics to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: rapidgzip [flags] FILE.gz (see -h)")
	}
	path := flag.Arg(0)

	opts := rapidgzip.Options{
		Parallelism:     *parallel,
		ChunkSize:       *chunkSize,
		VerifyChecksums: *verify,
	}
	var r *rapidgzip.Reader
	var err error
	if *importIndex != "" {
		r, err = rapidgzip.OpenWithIndex(path, *importIndex, opts)
	} else {
		r, err = rapidgzip.OpenOptions(path, opts)
	}
	if err != nil {
		return err
	}
	defer r.Close()

	var out io.Writer
	switch {
	case *countLines:
		out = io.Discard
	case *toStdout:
		out = os.Stdout
	default:
		p := *outPath
		if p == "" {
			p = strings.TrimSuffix(path, ".gz")
			if p == path {
				p = path + ".out"
			}
		}
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var lines int64
	if *countLines {
		out = &lineCounter{n: &lines}
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	n, err := io.Copy(bw, r)
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	if *countLines {
		fmt.Println(lines)
	}
	if *verify {
		if ok, fails := r.CRCVerified(); !ok || fails > 0 {
			return fmt.Errorf("CRC verification failed (%d mismatches)", fails)
		}
		fmt.Fprintln(os.Stderr, "rapidgzip: checksums OK")
	}
	if *exportIndex != "" {
		f, err := os.Create(*exportIndex)
		if err != nil {
			return err
		}
		err = r.ExportIndex(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if *stats {
		s := r.Stats()
		fmt.Fprintf(os.Stderr, "decompressed %d bytes; chunks=%d speculative=%d finderProbes=%d noBlock=%d falseStarts=%d onDemand=%d indexed=%d delegated=%d\n",
			n, s.ChunksConsumed, s.GuessTasks, s.FinderProbes, s.GuessNoBlock, s.GuessFalseStarts, s.OnDemandDecodes, s.IndexedDecodes, s.DelegatedDecodes)
	}
	return nil
}

// lineCounter counts newlines flowing through it.
type lineCounter struct{ n *int64 }

func (l *lineCounter) Write(p []byte) (int, error) {
	*l.n += int64(bytes.Count(p, []byte{'\n'}))
	return len(p), nil
}
