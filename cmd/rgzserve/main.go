// Command rgzserve serves HTTP range requests over the decompressed
// streams of compressed archives — gzip, BGZF, bzip2, LZ4 and zstd —
// without ever decompressing a file as a whole. Clients address byte
// ranges of the *decompressed* content:
//
//	rgzserve -root /data -addr :8080 -pool-budget 512M
//	curl -r 1000000-1000999 http://localhost:8080/archives/big.tar.gz
//
// Memory stays bounded regardless of archive count and size: all open
// archives share one span-cache byte budget (-pool-budget), at most
// -max-open archives are open at once (LRU), and -open-slots /
// -read-slots bound concurrent sizing passes and body decodes. Within
// the open slots, at most -heavy-open-slots may run heavy cold opens
// (unindexed gzip/bzip2/zstd of at least -heavy-open-bytes), so a
// stampede of cold scans never starves cheap opens.
//
// Endpoints:
//
//	GET/HEAD /archives/<name>  decompressed bytes, Range-aware (206/416),
//	                           conditional (If-None-Match / If-Modified-Since)
//	GET      /archives/        JSON list of servable archives
//	GET      /stats/<name>     backend counters of one archive
//	GET      /metrics          pool, server, warm-up and per-archive counters
//
// A sibling "<name>.rgzidx" index (saved by the rapidgzip CLI's
// -export-index) is imported automatically on first access, making the
// cold open of an indexed archive metadata-only. Archives served
// without one are indexed in the background (-warmup workers) and the
// sidecar is written — atomically — to -index-store, or beside the
// archive when no store is configured, so only the first open ever
// pays the sizing pass.
//
// With -tls-cert/-tls-key the server speaks HTTPS and, via Go's
// standard TLS stack, HTTP/2. On SIGTERM/SIGINT it stops accepting
// connections, drains in-flight requests for up to -drain-timeout,
// then closes every archive.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		root         = flag.String("root", ".", "directory of archives to serve")
		poolBudget   = flag.String("pool-budget", "256M", "shared decompressed-span cache budget across all open archives (K/M/G suffixes; 'off' disables the shared pool)")
		maxOpen      = flag.Int("max-open", 64, "max concurrently open archives (LRU-evicted beyond this)")
		openSlots    = flag.Int("open-slots", 0, "max concurrent archive opens (0 = NumCPU/2)")
		heavySlots   = flag.Int("heavy-open-slots", 0, "max open slots occupied by heavy cold opens (0 = half of -open-slots)")
		heavyBytes   = flag.String("heavy-open-bytes", "4M", "compressed size at which an unindexed open counts as heavy (K/M/G suffixes)")
		readSlots    = flag.Int("read-slots", 0, "max concurrent response bodies decoding (0 = 4*NumCPU)")
		par          = flag.Int("P", 0, "decompression threads per archive (0 = NumCPU)")
		indexStore   = flag.String("index-store", "", "directory for index sidecars, shared across servers (empty = beside each archive)")
		warmup       = flag.Int("warmup", 1, "background index warm-up workers (0 disables warm-up)")
		cacheControl = flag.String("cache-control", "", "Cache-Control header on archive responses (empty = 'public, max-age=60'; 'none' sends no header)")
		tlsCert      = flag.String("tls-cert", "", "TLS certificate file; with -tls-key enables HTTPS and HTTP/2")
		tlsKey       = flag.String("tls-key", "", "TLS private key file")
		drain        = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on SIGTERM/SIGINT")
	)
	flag.Parse()

	budget := int64(-1)
	if *poolBudget != "off" {
		n, err := parseSize(*poolBudget)
		if err != nil {
			fatal(fmt.Errorf("bad -pool-budget: %w", err))
		}
		budget = int64(n)
	}
	heavyOpenBytes, err := parseSize(*heavyBytes)
	if err != nil {
		fatal(fmt.Errorf("bad -heavy-open-bytes: %w", err))
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		fatal(errors.New("-tls-cert and -tls-key must be set together"))
	}
	var opts []rapidgzip.Option
	if *par > 0 {
		opts = append(opts, rapidgzip.WithParallelism(*par))
	}
	warmWorkers := *warmup
	if warmWorkers <= 0 {
		warmWorkers = -1 // Config: negative disables, zero means default
	}
	s, err := server.New(server.Config{
		Root:            *root,
		MaxOpenArchives: *maxOpen,
		OpenSlots:       *openSlots,
		HeavyOpenSlots:  *heavySlots,
		HeavyOpenBytes:  int64(heavyOpenBytes),
		ReadSlots:       *readSlots,
		PoolBudget:      budget,
		IndexStore:      *indexStore,
		WarmupWorkers:   warmWorkers,
		CacheControl:    *cacheControl,
		Options:         opts,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https+h2"
	}
	log.Printf("rgzserve: serving %s on %s (%s, pool budget %s, max %d open archives, warmup %d)",
		*root, *addr, scheme, *poolBudget, *maxOpen, max(0, *warmup))

	// Graceful shutdown: on the first SIGTERM/SIGINT stop accepting,
	// drain in-flight requests (bounded by -drain-timeout), then close
	// the archives. A second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			errc <- hs.ListenAndServeTLS(*tlsCert, *tlsKey)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		s.Close()
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: next signal is fatal
		log.Printf("rgzserve: shutting down, draining for up to %s", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := hs.Shutdown(dctx)
		cancel()
		s.Close()
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		log.Printf("rgzserve: drained cleanly")
	}
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgzserve:", err)
	os.Exit(1)
}
