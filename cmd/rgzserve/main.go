// Command rgzserve serves HTTP range requests over the decompressed
// streams of compressed archives — gzip, BGZF, bzip2, LZ4 and zstd —
// without ever decompressing a file as a whole. Clients address byte
// ranges of the *decompressed* content:
//
//	rgzserve -root /data -addr :8080 -pool-budget 512M
//	curl -r 1000000-1000999 http://localhost:8080/archives/big.tar.gz
//
// Memory stays bounded regardless of archive count and size: all open
// archives share one span-cache byte budget (-pool-budget), at most
// -max-open archives are open at once (LRU), and -open-slots /
// -read-slots bound concurrent sizing passes and body decodes.
//
// Endpoints:
//
//	GET/HEAD /archives/<name>  decompressed bytes, Range-aware (206/416)
//	GET      /archives/        JSON list of servable archives
//	GET      /stats/<name>     backend counters of one archive
//	GET      /metrics          pool, server and per-archive counters
//
// A sibling "<name>.rgzidx" index (saved by the rapidgzip CLI's
// -export-index) is imported automatically on first access, making the
// cold open of an indexed archive metadata-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		root       = flag.String("root", ".", "directory of archives to serve")
		poolBudget = flag.String("pool-budget", "256M", "shared decompressed-span cache budget across all open archives (K/M/G suffixes; 'off' disables the shared pool)")
		maxOpen    = flag.Int("max-open", 64, "max concurrently open archives (LRU-evicted beyond this)")
		openSlots  = flag.Int("open-slots", 0, "max concurrent archive opens (0 = NumCPU/2)")
		readSlots  = flag.Int("read-slots", 0, "max concurrent response bodies decoding (0 = 4*NumCPU)")
		par        = flag.Int("P", 0, "decompression threads per archive (0 = NumCPU)")
	)
	flag.Parse()

	budget := int64(-1)
	if *poolBudget != "off" {
		n, err := parseSize(*poolBudget)
		if err != nil {
			fatal(fmt.Errorf("bad -pool-budget: %w", err))
		}
		budget = int64(n)
	}
	var opts []rapidgzip.Option
	if *par > 0 {
		opts = append(opts, rapidgzip.WithParallelism(*par))
	}
	s, err := server.New(server.Config{
		Root:            *root,
		MaxOpenArchives: *maxOpen,
		OpenSlots:       *openSlots,
		ReadSlots:       *readSlots,
		PoolBudget:      budget,
		Options:         opts,
	})
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("rgzserve: serving %s on %s (pool budget %s, max %d open archives)",
		*root, *addr, *poolBudget, *maxOpen)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgzserve:", err)
	os.Exit(1)
}
