// Command gzgen creates the evaluation inputs: deterministic workloads
// (base64 random, FASTQ, Silesia-like tarball, raw random) compressed
// with any of the emulated tools/levels of the paper's Table 3, or with
// the bzip2/LZ4 substrates of Table 4.
//
//	gzgen -data base64 -size 512M -preset "pigz -6" -o b64.gz
//	gzgen -data silesia -size 64M -format bzip2 -o corpus.tar.bz2
//	gzgen -data fastq -size 64M -preset "bgzip -l 6" -o reads.fastq.bgz
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gzgen:", err)
		os.Exit(1)
	}
}

func run() error {
	data := flag.String("data", "base64", "workload: base64 | fastq | silesia | random")
	sizeStr := flag.String("size", "64M", "uncompressed size (suffixes K, M, G)")
	seed := flag.Uint64("seed", 1, "workload seed")
	preset := flag.String("preset", "gzip -6", `gzip compressor emulation, e.g. "pigz -6", "bgzip -l 0", "igzip -0"`)
	format := flag.String("format", "gzip", "container: gzip | bzip2 | lz4 | lz4frames | raw")
	streamSize := flag.Int("stream-size", 900_000, "bzip2: uncompressed bytes per independent stream")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		return err
	}

	var gen func(int, uint64) []byte
	switch *data {
	case "base64":
		gen = workloads.Base64
	case "fastq":
		gen = workloads.FASTQ
	case "silesia":
		gen = workloads.SilesiaLike
	case "random":
		gen = workloads.Random
	default:
		return fmt.Errorf("unknown workload %q", *data)
	}
	raw := gen(size, *seed)

	var comp []byte
	switch *format {
	case "gzip":
		opts, err := gzipw.Preset(*preset)
		if err != nil {
			return err
		}
		comp, _, err = gzipw.Compress(raw, opts)
		if err != nil {
			return err
		}
	case "bzip2":
		comp, err = bzip2x.Compress(raw, bzip2x.WriterOptions{Level: 9, StreamSize: *streamSize})
		if err != nil {
			return err
		}
	case "lz4":
		comp = lz4x.CompressFrames(raw, lz4x.FrameOptions{BlockSize: 256 << 10})
	case "lz4frames":
		comp = lz4x.CompressFrames(raw, lz4x.FrameOptions{FrameSize: 1 << 20, BlockSize: 256 << 10})
	case "raw":
		comp = raw
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	if err := os.WriteFile(*out, comp, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gzgen: %s: %d -> %d bytes (ratio %.2f)\n",
		*out, len(raw), len(comp), float64(len(raw))/float64(len(comp)))
	return nil
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
