// Command blockfinderstats reproduces the paper's Table 1: it applies
// every sequential check of the Dynamic Block finder to random bit
// positions and reports how many positions each filter rejects.
//
//	blockfinderstats -positions 100000000 -seeds 12
//
// The paper tested 1e12 positions over 12 repetitions on a cluster
// node; scale -positions to your time budget — the *relative* funnel
// shape is visible from ~1e7 positions on.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockfinder"
	"repro/internal/workloads"
)

func main() {
	positions := flag.Uint64("positions", 100_000_000, "bit positions to test per seed")
	seeds := flag.Int("seeds", 1, "independent repetitions (paper: 12)")
	flag.Parse()

	for s := 1; s <= *seeds; s++ {
		data := workloads.Random(int(*positions/8)+2400, uint64(s))
		funnel := blockfinder.ScanFunnel(data, *positions)
		if *seeds > 1 {
			fmt.Printf("--- seed %d ---\n", s)
		}
		fmt.Print(funnel.String())
	}
	_ = os.Stdout
}
