// Package rapidgzip provides parallel decompression of, and constant-
// time random access ("seeking") into, compressed files — gzip first
// and foremost, plus BGZF, bzip2, LZ4 and Zstandard instantiations of
// the same cache-plus-prefetch chunk-fetcher architecture (all five
// formats run on one engine, internal/spanengine; gzip adds its
// speculative chunk pipeline as a codec on top).
//
// It is a from-scratch Go reproduction of the system described in
// "Rapidgzip: Parallel Decompression and Seeking in Gzip Files Using
// Cache Prefetching" (Knespel & Brunst, HPDC 2023): the compressed file
// is split into chunks, a false-positive-tolerant block finder locates
// Deflate block candidates inside each chunk, worker goroutines decode
// the chunks speculatively into a 16-bit intermediate format whose
// marker symbols stand in for the unknown 32 KiB LZ window, and a
// cache-plus-prefetcher architecture stitches the speculative results
// back into the exact decompressed stream — falling back to an
// on-demand decode whenever a speculative result turns out to have
// started at a false positive.
//
// Basic usage — Open sniffs the format from the content, so the same
// call handles gzip, BGZF, bzip2, LZ4 and zstd:
//
//	f, err := rapidgzip.Open("big.tar.gz")
//	if err != nil { ... }
//	defer f.Close()
//	io.Copy(dst, f) // decompresses on all cores
//
// A seek-point index is built on the fly. Once present (or imported
// from a previous run — a sibling "big.tar.gz.rgzidx" is picked up
// automatically), any offset of the decompressed stream is reachable
// in constant time:
//
//	f.Seek(1<<40, io.SeekStart)
//	f.Read(buf)
//
// Formats differ in what they can do; Capabilities reports it:
//
//	if f.Capabilities().RandomAccess { ... }
//
// Open takes functional options (WithParallelism, WithChunkSize,
// WithVerify, WithStrategy, WithFormat, WithIndexFile, ...). The
// legacy Options struct and its constructors remain for existing call
// sites.
package rapidgzip

import (
	"io"
	"io/fs"
	"os"

	"repro/internal/core"
	"repro/internal/filereader"
	"repro/internal/spanengine"
	"repro/internal/tarfs"
)

// Stats counts backend activity. Every format runs on the shared span
// engine, so the sizing/span/prefetch/source-read counters are live for
// all of them; the speculative-decode counters on top are specific to
// the gzip/BGZF chunk pipeline (the only format whose chunk boundaries
// must be guessed). Zeros mean the machinery genuinely never ran — an
// index import is visible as FinderProbes == 0 (gzip/BGZF) or
// SizingPasses == 0 (every format).
type Stats struct {
	// --- gzip/BGZF chunk pipeline ------------------------------------
	GuessTasks       uint64
	GuessNoBlock     uint64
	GuessFalseStarts uint64
	// FinderProbes counts block-finder candidate probes across all
	// speculative tasks. It stays exactly zero when a complete index
	// was imported: known chunk offsets make the finder unnecessary.
	FinderProbes    uint64
	OnDemandDecodes uint64
	IndexedDecodes  uint64
	// DelegatedDecodes counts indexed chunk decodes served by stdlib
	// delegation (§3.3). Always zero since the indexed path switched to
	// the custom single-stage decoder; kept for compatibility.
	DelegatedDecodes uint64
	ChunksConsumed   uint64
	CRCFailures      uint64

	// --- span engine (all formats) -----------------------------------
	// SizingPasses counts codec sizing scans (0 after an index import,
	// 1 after a cold open — for gzip the "pass" is the growing span
	// table itself, for BGZF the member-metadata scan).
	SizingPasses uint64
	// SizingDecodes counts full span decodes the sizing pass needed
	// (bzip2 decodes everything once; LZ4 and sized zstd need none).
	SizingDecodes uint64
	// SpanDecodes counts span decodes after construction, on-demand
	// and prefetched alike.
	SpanDecodes uint64
	// PrefetchProposed counts strategy proposals before filtering
	// (deterministic per access sequence); PrefetchIssued counts
	// speculative span decodes actually dispatched; PrefetchJoined
	// counts accesses that joined one instead of decoding.
	PrefetchProposed, PrefetchIssued, PrefetchJoined uint64
	// SpanCacheHits / SpanCacheMisses / SpanCacheEvictions mirror the
	// engine's span cache.
	SpanCacheHits, SpanCacheMisses, SpanCacheEvictions uint64
	// SourceReads counts positional reads the span engine issued
	// against the compressed source (sizing-pass windows and span-
	// extent preads alike), and SourceBytesRead the bytes they
	// returned. For a file-backed archive these bound the compressed
	// bytes ever made resident: SourceBytesRead staying far below the
	// file size on a random-access workload is the larger-than-RAM
	// property, measured. Memory-backed archives count one logical
	// read per zero-copy span extent.
	SourceReads, SourceBytesRead uint64
}

// coreStats maps the gzip fetcher's counters into the public Stats.
func coreStats(s core.FetcherStats) Stats {
	return Stats{
		GuessTasks:       s.GuessTasks,
		GuessNoBlock:     s.GuessNoBlock,
		GuessFalseStarts: s.GuessFalseStarts,
		FinderProbes:     s.FinderProbes,
		OnDemandDecodes:  s.OnDemandDecodes,
		IndexedDecodes:   s.IndexedDecodes,
		DelegatedDecodes: s.DelegatedDecodes,
		ChunksConsumed:   s.ChunksConsumed,
		CRCFailures:      s.CRCFailures,
	}
}

// engineStats maps a span engine's counters into the public Stats.
func engineStats(s spanengine.Stats) Stats {
	return Stats{
		SizingPasses:       s.SizingPasses,
		SizingDecodes:      s.SizingDecodes,
		SpanDecodes:        s.SpanDecodes,
		PrefetchProposed:   s.PrefetchProposed,
		PrefetchIssued:     s.PrefetchIssued,
		PrefetchJoined:     s.PrefetchJoined,
		SpanCacheHits:      s.CacheHits,
		SpanCacheMisses:    s.CacheMisses,
		SpanCacheEvictions: s.Evictions,
		SourceReads:        s.SourceReads,
		SourceBytesRead:    s.SourceBytesRead,
	}
}

// Reader decompresses a gzip (or BGZF) file in parallel. It implements
// Archive; all methods are safe for concurrent use.
type Reader struct {
	pr         *core.ParallelGzipReader
	format     Format
	fileBacked bool      // false when the source is a resident buffer (WithInMemory, OpenBytes)
	owned      io.Closer // closed together with the reader, if non-nil
}

// OpenOptions opens the gzip file at path with explicit legacy
// options. Unlike Open it never sniffs for other formats and never
// auto-discovers a sibling index.
//
// Deprecated: use Open with functional options — e.g.
// Open(path, WithFormat(FormatGzip), WithParallelism(n)) — which adds
// format sniffing, index auto-discovery, and the typed error
// contract. See the README migration table.
func OpenOptions(path string, opts Options) (*Reader, error) {
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	r, err := newGzipReader(src, opts)
	if err != nil {
		src.Close()
		return nil, err
	}
	r.owned = src
	return r, nil
}

// OpenWithIndex opens the gzip file at path and imports the seek-point
// index previously saved at indexPath by ExportIndex. The reader is
// fully indexed from the start: every Seek/ReadAt is constant-time, the
// block finder never runs, and decompression is served chunk-exact from
// the recorded offsets and windows — the paper's "(index)" mode.
//
// Deprecated: use Open(path, WithIndexFile(indexPath)), which does the
// same import for every format (checkpoint tables included) and
// reports failures with the typed error contract. See the README
// migration table.
func OpenWithIndex(path, indexPath string, opts Options) (*Reader, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	r, err := importIndexReader(src, cfg, indexPath, sniffGzipFormat(src))
	if err != nil {
		src.Close()
		return nil, err
	}
	r.owned = src
	return r, nil
}

// NewReaderWithIndex wraps an open *os.File and imports a serialised
// seek-point index from index; exactly the index bytes are consumed
// from it. The gzip file must stay open for the lifetime of the
// Reader; Close does not close it. The index must have been exported
// for the same compressed file: corrupt indexes and wrong-file imports
// are rejected up front — the index header carries the compressed size
// and a head/tail fingerprint of the source file, so even an index for
// a different file of identical length is refused at import.
func NewReaderWithIndex(f *os.File, index io.Reader, opts Options) (*Reader, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	src, err := filereader.NewStandardFileReader(f)
	if err != nil {
		return nil, err
	}
	cfg.SkipMetadataScan = true
	pr, err := core.NewReader(src, cfg)
	if err != nil {
		return nil, err
	}
	r := &Reader{pr: pr, format: sniffGzipFormat(src)}
	if err := r.ImportIndex(index); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// NewReader wraps an open *os.File.  The file must stay open for the
// lifetime of the Reader; Close does not close it.
func NewReader(f *os.File, opts Options) (*Reader, error) {
	src, err := filereader.NewStandardFileReader(f)
	if err != nil {
		return nil, err
	}
	return newGzipReader(src, opts)
}

// NewBytesReader decompresses an in-memory gzip buffer.
func NewBytesReader(data []byte, opts Options) (*Reader, error) {
	return newGzipReader(filereader.MemoryReader(data), opts)
}

// newGzipReader is the common legacy-constructor tail: resolve the
// options and stand up the parallel gzip core over src.
func newGzipReader(src filereader.FileReader, opts Options) (*Reader, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	pr, err := core.NewReader(src, cfg)
	if err != nil {
		return nil, err
	}
	_, mem := filereader.Bytes(src)
	return &Reader{pr: pr, format: sniffGzipFormat(src), fileBacked: !mem}, nil
}

// sniffGzipFormat distinguishes BGZF from plain gzip for Format
// reporting. Anything else would have failed gzip header parsing, so
// unknown sniffs default to FormatGzip.
func sniffGzipFormat(src filereader.FileReader) Format {
	prefix := make([]byte, SniffLen)
	n, _ := src.ReadAt(prefix, 0)
	if f := DetectFormat(prefix[:n]); f == FormatBGZF {
		return FormatBGZF
	}
	return FormatGzip
}

// Read implements io.Reader on the decompressed stream.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.pr.Read(p)
	return n, closedErr(err)
}

// Seek implements io.Seeker on the decompressed stream. Seeking is
// cheap: it only moves the cursor; decompression happens on the next
// Read. io.SeekEnd completes the initial scan first, because the
// decompressed size of a gzip file is only known after scanning it.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	return r.pr.Seek(offset, whence)
}

// ReadAt implements io.ReaderAt without disturbing the Read cursor.
// Concurrent ReadAt calls at different offsets share the chunk caches —
// the access pattern of a mounted gzip-compressed TAR.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.pr.ReadAt(p, off)
	return n, closedErr(err)
}

// WriteTo implements io.WriterTo: the fast path for whole-file
// decompression used by io.Copy.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	if r.fileBacked {
		// Whole-file decompression reads the compressed source front to
		// back; hint the kernel so readahead widens.
		r.pr.AdviseSequential()
	}
	n, err := r.pr.WriteTo(w)
	return n, closedErr(err)
}

// Size returns the decompressed size, scanning the remainder of the
// file if it has not been fully indexed yet.
func (r *Reader) Size() (int64, error) { return r.pr.Size() }

// DecompressedSize implements Archive: the size is known without
// decoding once the chunk table is complete — after an index import, a
// BGZF metadata scan, or a finished first pass. Before that it reports
// ok=false rather than trigger the scan Size would run.
func (r *Reader) DecompressedSize() (int64, bool) { return r.pr.KnownSize() }

// AdviseSequentialRead hints the OS that the compressed file is about
// to be read front to back. No-op for memory-backed readers and
// platforms without posix_fadvise.
func (r *Reader) AdviseSequentialRead() {
	if r.fileBacked {
		r.pr.AdviseSequential()
	}
}

// Close releases the worker pool (and the file, for readers created
// with Open). Outstanding calls must have returned.
func (r *Reader) Close() error {
	err := r.pr.Close()
	if r.owned != nil {
		if cerr := r.owned.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BuildIndex completes the seek-point index for the whole file, making
// every subsequent Seek/ReadAt constant-time.
func (r *Reader) BuildIndex() error { return r.pr.BuildIndex() }

// ExportIndex serialises the seek-point index to w (completing it
// first if necessary). A later run can ImportIndex it to skip the
// initial decompression pass entirely — the paper's "(index)" mode,
// which is both faster and perfectly load-balanced.
func (r *Reader) ExportIndex(w io.Writer) error { return r.pr.ExportIndex(w) }

// ImportIndex installs an index previously written by ExportIndex.
// The index must belong to the same compressed file (enforced via the
// compressed size and the source fingerprint stored in the index).
func (r *Reader) ImportIndex(rd io.Reader) error { return r.pr.ImportIndex(rd) }

// Stats returns a snapshot of backend activity counters. Since the
// gzip/BGZF pipeline runs on the shared span engine, both counter
// groups are live: the chunk-pipeline counters (speculation, block
// finding, delegation) come from the fetcher, the cache/prefetch/
// source-read counters from the engine underneath it.
func (r *Reader) Stats() Stats {
	s := coreStats(r.pr.FetcherStats())
	e := engineStats(r.pr.EngineStats())
	s.SizingPasses = e.SizingPasses
	s.SizingDecodes = e.SizingDecodes
	s.SpanDecodes = e.SpanDecodes
	s.PrefetchProposed = e.PrefetchProposed
	s.PrefetchIssued = e.PrefetchIssued
	s.PrefetchJoined = e.PrefetchJoined
	s.SpanCacheHits = e.SpanCacheHits
	s.SpanCacheMisses = e.SpanCacheMisses
	s.SpanCacheEvictions = e.SpanCacheEvictions
	s.SourceReads = e.SourceReads
	s.SourceBytesRead = e.SourceBytesRead
	return s
}

// Format reports the container format this reader decodes (FormatGzip
// or FormatBGZF).
func (r *Reader) Format() Format { return r.format }

// Capabilities reports the gzip backend's full feature set: seekable,
// constant-time random access once indexed, parallel decompression
// with strategy-driven prefetching, index export/import, and opt-in
// CRC verification.
func (r *Reader) Capabilities() Capabilities {
	return Capabilities{Seek: true, RandomAccess: true, Parallel: true, Index: true, Verify: true, Prefetch: true}
}

// CRCVerified reports whether sequential CRC verification is still
// intact and how many mismatches were seen. It returns (false, 0) once
// consumption leaves sequential order (verification is then skipped,
// not failed). Requires Options.VerifyChecksums / WithVerify.
func (r *Reader) CRCVerified() (bool, uint64) { return r.pr.CRCStatus() }

// TarFS interprets the decompressed stream as a TAR archive and returns
// a read-only filesystem over its members — the ratarmount use case the
// paper describes (§1.3): after the initial scan, opening any member of
// a multi-gigabyte .tar.gz costs an index lookup plus decompression of
// the touched chunks only. The returned fs.FS also implements
// fs.ReadDirFS and fs.StatFS, so it works with fs.WalkDir and
// http.FileServerFS.
func (r *Reader) TarFS() (fs.FS, error) { return TarFS(r) }

// TarFS interprets any Archive's decompressed stream as a TAR archive
// and returns a read-only filesystem over its members. It works for
// every format Open handles — a .tar.bz2 or .tar.lz4 serves files the
// same way a .tar.gz does, at whatever random-access granularity the
// format's Capabilities admit.
func TarFS(a Archive) (fs.FS, error) { return tarfs.Open(a) }

// WriteTar streams src into w as a TAR archive — the write-side
// complement of TarFS. Pointed at a Writer from Create or NewWriter it
// produces a .tar.gz / .tar.zst whose members TarFS later serves with
// random access:
//
//	w, _ := rapidgzip.Create("backup.tar.gz")
//	rapidgzip.WriteTar(w, os.DirFS("/data"))
//	w.Close()
//
// WriteTar does not close w; call w.Close to finalize the archive and
// its index sidecar.
func WriteTar(w io.Writer, src fs.FS) error { return tarfs.Create(w, src) }
