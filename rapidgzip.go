// Package rapidgzip provides parallel decompression of, and constant-
// time random access ("seeking") into, arbitrary gzip files.
//
// It is a from-scratch Go reproduction of the system described in
// "Rapidgzip: Parallel Decompression and Seeking in Gzip Files Using
// Cache Prefetching" (Knespel & Brunst, HPDC 2023): the compressed file
// is split into chunks, a false-positive-tolerant block finder locates
// Deflate block candidates inside each chunk, worker goroutines decode
// the chunks speculatively into a 16-bit intermediate format whose
// marker symbols stand in for the unknown 32 KiB LZ window, and a
// cache-plus-prefetcher architecture stitches the speculative results
// back into the exact decompressed stream — falling back to an
// on-demand decode whenever a speculative result turns out to have
// started at a false positive.
//
// Basic usage:
//
//	f, err := rapidgzip.Open("big.tar.gz")
//	if err != nil { ... }
//	defer f.Close()
//	io.Copy(dst, f) // decompresses on all cores
//
// A seek-point index is built on the fly. Once present (or imported
// from a previous run with ImportIndex), any offset of the decompressed
// stream is reachable in constant time:
//
//	f.Seek(1<<40, io.SeekStart)
//	f.Read(buf)
//
// The zero Options value selects runtime.NumCPU() workers and the
// paper's default 4 MiB chunk size.
package rapidgzip

import (
	"bufio"
	"io"
	"io/fs"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/filereader"
	"repro/internal/prefetch"
	"repro/internal/tarfs"
)

// Options tunes a Reader. The zero value is ready to use.
type Options struct {
	// Parallelism is the number of decompression workers. Zero selects
	// runtime.NumCPU(); the paper's -P flag.
	Parallelism int
	// ChunkSize is the compressed bytes handed to one worker task.
	// Zero selects the paper's 4 MiB default. Figure 12 of the paper
	// sweeps this parameter: too small wastes time in the block finder,
	// too large starves workers near the end of the file.
	ChunkSize int
	// VerifyChecksums enables CRC32 verification of every gzip member
	// against its footer while the stream is consumed sequentially.
	// Chunk checksums are combined with a GF(2) CRC-combine, so
	// verification is parallel too.
	VerifyChecksums bool
	// MaxPrefetch bounds the number of speculative chunk decodes in
	// flight. Zero selects twice the parallelism (the paper's default).
	MaxPrefetch int
	// AccessCacheSize is the capacity (in chunks) of the accessed-chunk
	// cache. It only matters for concurrent random access; sequential
	// decompression needs a single slot.
	AccessCacheSize int
	// Strategy selects the prefetch strategy: "adaptive" (default),
	// "fixed", or "multistream" (for concurrent access at several
	// offsets, e.g. serving a mounted TAR).
	Strategy string
}

func (o Options) toCore() core.Config {
	cfg := core.Config{
		Parallelism:     o.Parallelism,
		ChunkSize:       o.ChunkSize,
		MaxPrefetch:     o.MaxPrefetch,
		AccessCacheSize: o.AccessCacheSize,
		VerifyChecksums: o.VerifyChecksums,
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	switch o.Strategy {
	case "fixed":
		cfg.Strategy = prefetch.NewFixed()
	case "multistream":
		cfg.Strategy = prefetch.NewMultiStream()
	}
	return cfg
}

// Stats counts fetcher activity: speculative decodes issued, false
// starts discarded, on-demand decodes, and chunks consumed.
type Stats = core.FetcherStats

// Reader decompresses a gzip file in parallel. It implements io.Reader,
// io.Seeker, io.ReaderAt, io.WriterTo and io.Closer. All methods are
// safe for concurrent use.
type Reader struct {
	pr    *core.ParallelGzipReader
	owned io.Closer // closed together with the reader, if non-nil
}

// Open opens the gzip file at path for parallel decompression with
// default options.
func Open(path string) (*Reader, error) {
	return OpenOptions(path, Options{})
}

// OpenOptions opens the gzip file at path with explicit options.
func OpenOptions(path string, opts Options) (*Reader, error) {
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	pr, err := core.NewReader(src, opts.toCore())
	if err != nil {
		src.Close()
		return nil, err
	}
	return &Reader{pr: pr, owned: src}, nil
}

// OpenWithIndex opens the gzip file at path and imports the seek-point
// index previously saved at indexPath by ExportIndex. The reader is
// fully indexed from the start: every Seek/ReadAt is constant-time, the
// block finder never runs, and decompression is served chunk-exact from
// the recorded offsets and windows — the paper's "(index)" mode.
func OpenWithIndex(path, indexPath string, opts Options) (*Reader, error) {
	ixf, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer ixf.Close()
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	r, err := newImportReader(src, opts)
	if err != nil {
		src.Close()
		return nil, err
	}
	r.owned = src
	// The file holds nothing but the index, so buffering is safe and
	// spares the varint-level deserializer per-byte file reads.
	if err := r.ImportIndex(bufio.NewReader(ixf)); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// NewReaderWithIndex wraps an open *os.File and imports a serialised
// seek-point index from index; exactly the index bytes are consumed
// from it. The gzip file must stay open for the lifetime of the
// Reader; Close does not close it. The index must have been exported
// for the same compressed file: corrupt indexes and wrong-file imports
// are rejected up front, though the wrong-file check currently
// compares only the compressed size — an index for a different file of
// identical length decodes garbage (caught when Options.VerifyChecksums
// is on).
func NewReaderWithIndex(f *os.File, index io.Reader, opts Options) (*Reader, error) {
	src, err := filereader.NewStandardFileReader(f)
	if err != nil {
		return nil, err
	}
	r, err := newImportReader(src, opts)
	if err != nil {
		return nil, err
	}
	if err := r.ImportIndex(index); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// newImportReader constructs a reader destined for an immediate index
// import: the eager BGZF member-metadata scan is skipped, because the
// imported table would replace its result anyway — for a BGZF file
// with millions of members that scan is the exact startup cost
// importing an index exists to avoid.
func newImportReader(src filereader.FileReader, opts Options) (*Reader, error) {
	cfg := opts.toCore()
	cfg.SkipMetadataScan = true
	pr, err := core.NewReader(src, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{pr: pr}, nil
}

// NewReader wraps an open *os.File.  The file must stay open for the
// lifetime of the Reader; Close does not close it.
func NewReader(f *os.File, opts Options) (*Reader, error) {
	src, err := filereader.NewStandardFileReader(f)
	if err != nil {
		return nil, err
	}
	pr, err := core.NewReader(src, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Reader{pr: pr}, nil
}

// NewBytesReader decompresses an in-memory gzip buffer.
func NewBytesReader(data []byte, opts Options) (*Reader, error) {
	pr, err := core.NewReader(filereader.MemoryReader(data), opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Reader{pr: pr}, nil
}

// Read implements io.Reader on the decompressed stream.
func (r *Reader) Read(p []byte) (int, error) { return r.pr.Read(p) }

// Seek implements io.Seeker on the decompressed stream. Seeking is
// cheap: it only moves the cursor; decompression happens on the next
// Read. io.SeekEnd completes the initial scan first, because the
// decompressed size of a gzip file is only known after scanning it.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	return r.pr.Seek(offset, whence)
}

// ReadAt implements io.ReaderAt without disturbing the Read cursor.
// Concurrent ReadAt calls at different offsets share the chunk caches —
// the access pattern of a mounted gzip-compressed TAR.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) { return r.pr.ReadAt(p, off) }

// WriteTo implements io.WriterTo: the fast path for whole-file
// decompression used by io.Copy.
func (r *Reader) WriteTo(w io.Writer) (int64, error) { return r.pr.WriteTo(w) }

// Size returns the decompressed size, scanning the remainder of the
// file if it has not been fully indexed yet.
func (r *Reader) Size() (int64, error) { return r.pr.Size() }

// Close releases the worker pool (and the file, for readers created
// with Open). Outstanding calls must have returned.
func (r *Reader) Close() error {
	err := r.pr.Close()
	if r.owned != nil {
		if cerr := r.owned.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BuildIndex completes the seek-point index for the whole file, making
// every subsequent Seek/ReadAt constant-time.
func (r *Reader) BuildIndex() error { return r.pr.BuildIndex() }

// ExportIndex serialises the seek-point index to w (completing it
// first if necessary). A later run can ImportIndex it to skip the
// initial decompression pass entirely — the paper's "(index)" mode,
// which is both faster and perfectly load-balanced.
func (r *Reader) ExportIndex(w io.Writer) error { return r.pr.ExportIndex(w) }

// ImportIndex installs an index previously written by ExportIndex.
// The index must belong to the same compressed file.
func (r *Reader) ImportIndex(rd io.Reader) error { return r.pr.ImportIndex(rd) }

// Stats returns a snapshot of fetcher activity counters.
func (r *Reader) Stats() Stats { return r.pr.FetcherStats() }

// CRCVerified reports whether sequential CRC verification is still
// intact and how many mismatches were seen. It returns (false, 0) once
// consumption leaves sequential order (verification is then skipped,
// not failed). Requires Options.VerifyChecksums.
func (r *Reader) CRCVerified() (bool, uint64) { return r.pr.CRCStatus() }

// TarFS interprets the decompressed stream as a TAR archive and returns
// a read-only filesystem over its members — the ratarmount use case the
// paper describes (§1.3): after the initial scan, opening any member of
// a multi-gigabyte .tar.gz costs an index lookup plus decompression of
// the touched chunks only. The returned fs.FS also implements
// fs.ReadDirFS and fs.StatFS, so it works with fs.WalkDir and
// http.FileServerFS.
func (r *Reader) TarFS() (fs.FS, error) {
	size, err := r.Size()
	if err != nil {
		return nil, err
	}
	return tarfs.New(r, size)
}
