package rapidgzip

import "repro/internal/spanengine"

// CachePool is a shared span-cache budget across any number of open
// archives: every archive opened with WithSharedPool(p) caches its
// decompressed spans in one pool bounded to a total byte budget, with
// recency global across archives — a hot archive's spans evict a cold
// archive's. This turns the per-archive memory model of
// WithAccessCacheSize ("N spans each") into the cross-archive model a
// server needs ("N bytes across everything open"), and is the memory
// contract behind cmd/rgzserve.
//
// A pool is safe for concurrent use and may outlive any archive using
// it; closing an archive releases its cached bytes back to the budget.
// Spans larger than the whole budget are served by decoding and never
// cached, so the pool's resident bytes never exceed the budget.
type CachePool struct {
	p *spanengine.CachePool
}

// NewCachePool returns a pool bounding the total cached decompressed
// bytes of all member archives to budgetBytes. A non-positive budget
// caches nothing (every access decodes).
func NewCachePool(budgetBytes int64) *CachePool {
	return &CachePool{p: spanengine.NewCachePool(budgetBytes)}
}

// PoolStats is a snapshot of a CachePool's accounting, aggregated over
// all member archives past and present.
type PoolStats struct {
	// BudgetBytes is the configured capacity, UsedBytes the cached
	// decompressed bytes right now, and PeakBytes the lifetime
	// high-water mark of UsedBytes. PeakBytes <= BudgetBytes is a
	// structural invariant.
	BudgetBytes int64 `json:"budget_bytes"`
	UsedBytes   int64 `json:"used_bytes"`
	PeakBytes   int64 `json:"peak_bytes"`
	// Entries counts cached spans; Archives the member engines
	// currently registered.
	Entries  int `json:"entries"`
	Archives int `json:"archives"`
	// Hits/Misses/Evictions aggregate span-cache activity pool-wide;
	// Rejected counts spans not cached because they alone exceed the
	// budget.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Rejected  uint64 `json:"rejected"`
}

// Stats returns a snapshot of the pool's accounting.
func (p *CachePool) Stats() PoolStats {
	s := p.p.Stats()
	return PoolStats{
		BudgetBytes: s.BudgetBytes,
		UsedBytes:   s.UsedBytes,
		PeakBytes:   s.PeakBytes,
		Entries:     s.Entries,
		Archives:    s.Engines,
		Hits:        s.Hits,
		Misses:      s.Misses,
		Evictions:   s.Evictions,
		Rejected:    s.Rejected,
	}
}

// WithSharedPool places the archive's span cache in p instead of a
// private per-archive cache. The memory model changes accordingly:
// WithAccessCacheSize (spans per archive) is ignored for archives in a
// pool — the pool's byte budget is the bound, shared across every
// member. All five formats participate; for gzip/BGZF the pooled
// entries are the chunks of the speculative pipeline.
func WithSharedPool(p *CachePool) Option {
	return func(c *config) error {
		if p == nil {
			return errOptNilPool
		}
		c.pool = p
		return nil
	}
}
