package rapidgzip

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"

	"io/fs"

	"repro/internal/workloads"
)

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, _ := gzip.NewWriterLevel(&buf, 6)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	return buf.Bytes()
}

func TestOpenAndCopy(t *testing.T) {
	data := workloads.Base64(1_000_000, 1)
	path := filepath.Join(t.TempDir(), "data.gz")
	if err := os.WriteFile(path, gzipBytes(t, data), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenOptions(path, Options{Parallelism: 4, ChunkSize: 64 << 10, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("mismatch: %d vs %d bytes", out.Len(), len(data))
	}
	if ok, fails := r.CRCVerified(); !ok || fails > 0 {
		t.Fatalf("CRC: ok=%v fails=%d", ok, fails)
	}
	if s := r.Stats(); s.ChunksConsumed == 0 {
		t.Fatal("no chunks consumed?")
	}
}

func TestNewReaderFromFile(t *testing.T) {
	data := workloads.FASTQ(400_000, 2)
	path := filepath.Join(t.TempDir(), "reads.fastq.gz")
	os.WriteFile(path, gzipBytes(t, data), 0o644)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f, Options{Parallelism: 2, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("mismatch (err=%v)", err)
	}
}

func TestSeekReadAt(t *testing.T) {
	data := workloads.SilesiaLike(800_000, 3)
	r, err := NewBytesReader(gzipBytes(t, data), Options{Parallelism: 3, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if size, err := r.Size(); err != nil || size != int64(len(data)) {
		t.Fatalf("size %d err %v", size, err)
	}
	// Seek + Read.
	if _, err := r.Seek(500_000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[500_000:501_024]) {
		t.Fatal("seek+read mismatch")
	}
	// ReadAt does not disturb the cursor.
	at := make([]byte, 512)
	if _, err := r.ReadAt(at, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(at, data[100:612]) {
		t.Fatal("ReadAt mismatch")
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[501_024:502_048]) {
		t.Fatal("cursor was disturbed by ReadAt")
	}
}

func TestIndexRoundTripPublicAPI(t *testing.T) {
	data := workloads.Base64(600_000, 4)
	comp := gzipBytes(t, data)

	r1, err := NewBytesReader(comp, Options{Parallelism: 2, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var ix bytes.Buffer
	if err := r1.ExportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	r2, err := NewBytesReader(comp, Options{Parallelism: 2, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.ImportIndex(bytes.NewReader(ix.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("index-primed read mismatch (err=%v)", err)
	}
	if s := r2.Stats(); s.GuessTasks != 0 {
		t.Fatalf("index-primed read ran %d speculative decodes", s.GuessTasks)
	}
}

func TestOpenWithIndex(t *testing.T) {
	data := workloads.SilesiaLike(900_000, 41)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gz")
	ixPath := filepath.Join(dir, "data.gz.rgzidx")
	if err := os.WriteFile(path, gzipBytes(t, data), 0o644); err != nil {
		t.Fatal(err)
	}

	// First run: decompress once, save the index.
	r1, err := OpenOptions(path, Options{Parallelism: 4, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.ExportIndex(ixf); err != nil {
		t.Fatal(err)
	}
	if err := ixf.Close(); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	// Second run: reopen with the saved index; no block-finder probes,
	// no speculative decodes, byte-identical output.
	r2, err := OpenWithIndex(path, ixPath, Options{Parallelism: 4, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, err := io.ReadAll(r2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("index-primed read mismatch (err=%v)", err)
	}
	if s := r2.Stats(); s.GuessTasks != 0 || s.FinderProbes != 0 {
		t.Fatalf("import path ran the block finder: %d tasks, %d probes", s.GuessTasks, s.FinderProbes)
	}

	// ReadAt without any prior sequential read, straight off the index.
	r3, err := OpenWithIndex(path, ixPath, Options{Parallelism: 2, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	buf := make([]byte, 4096)
	off := len(data)/2 + 12345
	if _, err := r3.ReadAt(buf, int64(off)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+len(buf)]) {
		t.Fatal("ReadAt with imported index mismatch")
	}

	// A wrong index file must be rejected at open time.
	other := filepath.Join(dir, "other.gz")
	os.WriteFile(other, gzipBytes(t, workloads.Base64(100_000, 42)), 0o644)
	if _, err := OpenWithIndex(other, ixPath, Options{}); err == nil {
		t.Fatal("index for a different file accepted")
	}
	if _, err := OpenWithIndex(path, other, Options{}); err == nil {
		t.Fatal("gzip file accepted as an index")
	}
	if _, err := OpenWithIndex(path, filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("missing index file accepted")
	}
}

func TestNewReaderWithIndex(t *testing.T) {
	data := workloads.FASTQ(500_000, 43)
	path := filepath.Join(t.TempDir(), "reads.fastq.gz")
	os.WriteFile(path, gzipBytes(t, data), 0o644)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r1, err := NewReader(f, Options{Parallelism: 2, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var ix bytes.Buffer
	if err := r1.ExportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	r2, err := NewReaderWithIndex(f, bytes.NewReader(ix.Bytes()), Options{Parallelism: 3, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, err := io.ReadAll(r2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("mismatch (err=%v)", err)
	}
	if s := r2.Stats(); s.FinderProbes != 0 {
		t.Fatalf("import path probed the block finder %d times", s.FinderProbes)
	}

	// Truncated index bytes must fail the constructor, not poison reads.
	if _, err := NewReaderWithIndex(f, bytes.NewReader(ix.Bytes()[:ix.Len()/2]), Options{}); err == nil {
		t.Fatal("truncated index accepted")
	}

	// The import must consume exactly the index bytes: an index
	// embedded in a larger stream leaves the following data unread.
	stream := append(bytes.Clone(ix.Bytes()), []byte("TRAILER AFTER THE INDEX")...)
	sr := bytes.NewReader(stream)
	r3, err := NewReaderWithIndex(f, sr, Options{Parallelism: 2, ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	rest, err := io.ReadAll(sr)
	if err != nil || string(rest) != "TRAILER AFTER THE INDEX" {
		t.Fatalf("import over-consumed the stream: %d bytes left (%q)", len(rest), rest)
	}
}

func TestStrategyNames(t *testing.T) {
	data := workloads.Base64(300_000, 5)
	comp := gzipBytes(t, data)
	for _, s := range []string{"", "adaptive", "fixed", "multistream"} {
		r, err := NewBytesReader(comp, Options{Parallelism: 2, ChunkSize: 32 << 10, Strategy: s})
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%q: mismatch (err=%v)", s, err)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.gz")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "not.gz")
	os.WriteFile(path, []byte("not gzip data"), 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("non-gzip file accepted")
	}
}

func TestTarFS(t *testing.T) {
	// The ratarmount scenario through the public API: list and read
	// members of a .tar.gz via io/fs.
	tarball := workloads.SilesiaLike(2<<20, 6) // a real TAR by construction
	r, err := NewBytesReader(gzipBytes(t, tarball), Options{Parallelism: 3, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fsys, err := r.TarFS()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir(fsys, "silesia")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d members", len(entries))
	}
	data, err := fs.ReadFile(fsys, "silesia/"+entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty member")
	}
	// Walk the whole tree.
	count := 0
	err = fs.WalkDir(fsys, ".", func(string, fs.DirEntry, error) error {
		count++
		return nil
	})
	if err != nil || count < 4 {
		t.Fatalf("walk: %d entries, %v", count, err)
	}
}
