package rapidgzip_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/lz4x"
)

// gzipped compresses data with the standard library, for examples.
func gzipped(data []byte) []byte {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Write(data)
	w.Close()
	return buf.Bytes()
}

// One Open for every format: the content's magic bytes select the
// backend, and the Archive interface is the same regardless.
func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "hello.gz")
	os.WriteFile(path, gzipped([]byte("hello, rapidgzip\n")), 0o644)

	a, err := rapidgzip.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	fmt.Printf("format: %s\n", a.Format())
	io.Copy(os.Stdout, a)
	// Output:
	// format: gzip
	// hello, rapidgzip
}

// WithFormat skips sniffing and forces a backend — useful when magic
// bytes are unavailable or only one format is acceptable.
func ExampleWithFormat() {
	comp := lz4x.CompressFrames([]byte("forced through the LZ4 backend\n"), lz4x.FrameOptions{})

	a, err := rapidgzip.OpenBytes(comp, rapidgzip.WithFormat(rapidgzip.FormatLZ4))
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	fmt.Printf("format: %s, seekable: %v\n", a.Format(), a.Capabilities().Seek)
	io.Copy(os.Stdout, a)
	// Output:
	// format: lz4, seekable: true
	// forced through the LZ4 backend
}

// Open transparently imports a sibling "<file>.rgzidx" index saved by
// an earlier run, making the reader fully indexed from the start —
// the block finder never runs (opt out with WithoutIndexDiscovery).
func ExampleOpen_indexDiscovery() {
	dir, _ := os.MkdirTemp("", "example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.gz")
	os.WriteFile(path, gzipped(bytes.Repeat([]byte("log line\n"), 100_000)), 0o644)

	// First run: decompress once and save the index next to the file.
	first, err := rapidgzip.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	ixf, _ := os.Create(path + rapidgzip.IndexSuffix)
	first.ExportIndex(ixf)
	ixf.Close()
	first.Close()

	// Later runs discover it automatically.
	a, err := rapidgzip.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	n, _ := io.Copy(io.Discard, a)
	fmt.Printf("decompressed %d bytes, finder probes: %d\n", n, a.Stats().FinderProbes)
	// Output:
	// decompressed 900000 bytes, finder probes: 0
}
