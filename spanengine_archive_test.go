package rapidgzip

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// spanFixtures builds one multi-chunk fixture per format from the same
// corpus — every format, gzip included, runs on the shared span engine
// now, so the whole matrix goes through the same contracts.
func spanFixtures(t *testing.T, data []byte) map[Format][]byte {
	t.Helper()
	gz, _, err := gzipw.Compress(data, gzipw.Options{Level: 6})
	if err != nil {
		t.Fatal(err)
	}
	bgzf, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return map[Format][]byte{
		FormatGzip:  gz,
		FormatBGZF:  bgzf,
		FormatBzip2: bz,
		FormatLZ4:   lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 64 << 10, ContentChecksum: true}),
		FormatZstd:  zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 64 << 10, ContentChecksum: true}),
	}
}

// TestStrategyHonoredPerFormat is the WithStrategy regression test:
// before the span engine, the option silently did nothing for
// bzip2/LZ4/zstd archives. Now every format must (a) reject unknown
// names at option time, (b) accept every valid name, and (c) actually
// route the chosen strategy into the backend — observable because
// Fixed keeps proposing the full prefetch degree on random access
// while Adaptive resets, so the same jumpy access pattern issues
// strictly more prefetches under "fixed".
func TestStrategyHonoredPerFormat(t *testing.T) {
	data := workloads.Base64(600_000, 21)
	for format, comp := range spanFixtures(t, data) {
		t.Run(format.String(), func(t *testing.T) {
			if _, err := OpenBytes(comp, WithStrategy("bogus")); err == nil {
				t.Fatal("unknown strategy accepted")
			}
			for _, name := range []string{"", "adaptive", "fixed", "multistream"} {
				a, err := OpenBytes(comp, WithStrategy(name), WithParallelism(2))
				if err != nil {
					t.Fatalf("strategy %q rejected: %v", name, err)
				}
				buf := make([]byte, 100)
				if _, err := a.ReadAt(buf, 1000); err != nil {
					t.Fatalf("strategy %q: ReadAt: %v", name, err)
				}
				a.Close()
			}
			// Jumpy access pattern: every access breaks the sequential
			// streak, so Adaptive stays at degree 2 while Fixed proposes
			// the full MaxPrefetch each time. PrefetchProposed counts
			// raw strategy proposals, so it is deterministic regardless
			// of decode timing or worker-slot availability. Since the
			// gzip/BGZF pipeline runs on the span engine, the same
			// counter comparison covers all five formats (the chunk size
			// keeps their span tables multi-entry; other formats ignore
			// it).
			issued := map[string]uint64{}
			for _, name := range []string{"adaptive", "fixed"} {
				a, err := OpenBytes(comp,
					WithStrategy(name), WithParallelism(2), WithMaxPrefetch(8), WithChunkSize(64<<10))
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 10)
				step := int64(64 << 10)
				for i := 0; i < 4; i++ {
					for _, off := range []int64{int64(i) * step, int64(i)*step + 4*step} {
						if off >= int64(len(data)) {
							continue
						}
						if _, err := a.ReadAt(buf, off); err != nil {
							t.Fatalf("%s: ReadAt(%d): %v", name, off, err)
						}
					}
				}
				issued[name] = a.Stats().PrefetchProposed
				a.Close()
			}
			if issued["fixed"] <= issued["adaptive"] {
				t.Fatalf("fixed strategy proposed %d prefetches, adaptive %d — WithStrategy is not reaching the %v engine",
					issued["fixed"], issued["adaptive"], format)
			}
		})
	}
}

// TestConcurrentReadAtAllSpanFormats hammers concurrent ReadAt across
// every non-gzip backend through the shared engine, table-driven with
// one fixture per format (run under -race in CI). A deliberately tiny
// span cache keeps eviction churning under the concurrency.
func TestConcurrentReadAtAllSpanFormats(t *testing.T) {
	data := workloads.FASTQ(800_000, 9)
	for format, comp := range spanFixtures(t, data) {
		t.Run(format.String(), func(t *testing.T) {
			a, err := OpenBytes(comp, WithParallelism(4), WithAccessCacheSize(2), WithChunkSize(64<<10))
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(seed))
					p := make([]byte, 3000)
					for i := 0; i < 25; i++ {
						off := rnd.Int63n(int64(len(data) - len(p)))
						n, err := a.ReadAt(p, off)
						if err != nil && err != io.EOF {
							t.Errorf("ReadAt(%d): %v", off, err)
							return
						}
						if !bytes.Equal(p[:n], data[off:off+int64(n)]) {
							t.Errorf("ReadAt(%d): mismatch", off)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

// TestEvictionPressureThroughArchive forces the span cache over
// capacity mid-prefetch through the public API: a 2-span cache under a
// deep prefetch pipeline must evict continuously while sequential
// consumption stays byte-exact.
func TestEvictionPressureThroughArchive(t *testing.T) {
	data := workloads.Base64(1_500_000, 13)
	comp, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 50 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenBytes(comp, WithParallelism(4), WithAccessCacheSize(2), WithMaxPrefetch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch under eviction pressure")
	}
	s := a.Stats()
	if s.SpanCacheEvictions == 0 {
		t.Fatalf("no evictions with a 2-span cache and prefetch depth 8: %+v", s)
	}
	if s.PrefetchIssued == 0 {
		t.Fatalf("no prefetches issued during sequential consumption: %+v", s)
	}
}

// TestReopenWithIndexSkipsSizingPass is the acceptance check of the
// span-engine PR (the analogue of PR 1's zero-finder-probes test):
// exporting an RGZIDX04 index and reopening the file with it must
// perform zero sizing passes and zero sizing-pass decodes — for bzip2
// (whose cold open decodes the whole file), for LZ4, and for zstd both
// sized and unsized (the latter is the strongest case: without the
// index, open costs a sequential decode of every frame).
func TestReopenWithIndexSkipsSizingPass(t *testing.T) {
	data := workloads.Base64(400_000, 37)
	bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fixtures := map[string][]byte{
		"data.bz2":         bz,
		"data.lz4":         lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 64 << 10, ContentChecksum: true}),
		"data.zst":         zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 64 << 10, ContentChecksum: true}),
		"data-unsized.zst": zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 64 << 10, OmitContentSize: true}),
	}
	dir := t.TempDir()
	for name, comp := range fixtures {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, comp, 0o644); err != nil {
				t.Fatal(err)
			}

			// Cold open: scans (and for bzip2/unsized-zstd, decodes).
			a, err := Open(path, WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			cold := a.Stats()
			if cold.SizingPasses != 1 {
				t.Fatalf("cold open ran %d sizing passes, want 1", cold.SizingPasses)
			}
			wantSizingDecodes := name == "data.bz2" || name == "data-unsized.zst"
			if (cold.SizingDecodes > 0) != wantSizingDecodes {
				t.Fatalf("cold open sizing decodes = %d, expected >0 == %v", cold.SizingDecodes, wantSizingDecodes)
			}
			ixf, err := os.Create(path + IndexSuffix)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.ExportIndex(ixf); err != nil {
				t.Fatal(err)
			}
			ixf.Close()
			a.Close()

			// Reopen: the sibling index is discovered, the sizing pass
			// is skipped entirely, and content stays byte-exact.
			b, err := Open(path, WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if s := b.Stats(); s.SizingPasses != 0 || s.SizingDecodes != 0 {
				t.Fatalf("reopen with index still sized: passes=%d decodes=%d", s.SizingPasses, s.SizingDecodes)
			}
			var out bytes.Buffer
			if _, err := io.Copy(&out, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatal("content mismatch through imported checkpoint table")
			}
			// Random access exactness through the imported table.
			buf := make([]byte, 777)
			for _, off := range []int64{0, 65_535, 200_000, int64(len(data)) - 777} {
				if _, err := b.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
				if !bytes.Equal(buf, data[off:off+777]) {
					t.Fatalf("ReadAt(%d): mismatch", off)
				}
			}
			// An unsized zstd file becomes parallel and random-access on
			// reopen: the imported table is complete metadata.
			if name == "data-unsized.zst" {
				caps := b.Capabilities()
				if !caps.RandomAccess || !caps.Parallel || !caps.Prefetch {
					t.Fatalf("unsized zstd with index should gain full capabilities, got %+v", caps)
				}
			}
		})
	}
}
