package rapidgzip

// One testing.B benchmark per table and figure of the paper's
// evaluation (§4). These are the quick, `go test -bench` views; the
// full sweeps with paper-style output come from cmd/benchsuite (see
// EXPERIMENTS.md).
//
// Throughput (`B/s` via b.SetBytes) is always measured in decompressed
// bytes, like the paper's bandwidth axes.

import (
	"bytes"
	"compress/gzip"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bitio"
	"repro/internal/blockfinder"
	"repro/internal/bzip2x"
	"repro/internal/filereader"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/pugz"
	"repro/internal/workloads"
)

// --- shared fixtures, built once ----------------------------------------

type fixture struct {
	raw  []byte
	comp []byte
	idx  map[int][]byte // per-parallelism index (entry spacing scales with P)
}

var (
	fixtures   = map[string]*fixture{}
	fixturesMu sync.Mutex
)

// getFixture builds (once) a compressed workload.
func getFixture(b *testing.B, name string, gen func(int, uint64) []byte, size int, preset string) *fixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	raw := gen(size, 42)
	opts, err := gzipw.Preset(preset)
	if err != nil {
		b.Fatal(err)
	}
	comp, _, err := gzipw.Compress(raw, opts)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{raw: raw, comp: comp, idx: map[int][]byte{}}
	fixtures[name] = f
	return f
}

// indexFor builds (once per P) a seek-point index whose entry spacing
// matches the chunk size used at that parallelism.
func (f *fixture) indexFor(b *testing.B, p int) []byte {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if idx, ok := f.idx[p]; ok {
		return idx
	}
	r, err := NewBytesReader(f.comp, Options{ChunkSize: scaledChunk(len(f.comp), p)})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.ExportIndex(&buf); err != nil {
		b.Fatal(err)
	}
	r.Close()
	f.idx[p] = buf.Bytes()
	return buf.Bytes()
}

// scaledChunk keeps many chunks per worker at bench-scale file sizes
// (the paper's regime with its 512 MB/core files); Fig12 sweeps the
// parameter explicitly.
func scaledChunk(compLen, p int) int {
	cs := compLen / (6 * p)
	if cs < 128<<10 {
		cs = 128 << 10
	}
	if cs > 4<<20 {
		cs = 4 << 20
	}
	return cs
}

func benchDecompress(b *testing.B, f *fixture, opts Options, withIndex bool) {
	b.Helper()
	if opts.Parallelism == 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = scaledChunk(len(f.comp), opts.Parallelism)
	}
	var idx []byte
	if withIndex {
		idx = f.indexFor(b, opts.Parallelism)
	}
	b.SetBytes(int64(len(f.raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewBytesReader(f.comp, opts)
		if err != nil {
			b.Fatal(err)
		}
		if withIndex {
			if err := r.ImportIndex(bytes.NewReader(idx)); err != nil {
				b.Fatal(err)
			}
		}
		n, err := io.Copy(io.Discard, r)
		r.Close()
		if err != nil || n != int64(len(f.raw)) {
			b.Fatalf("decoded %d of %d bytes: %v", n, len(f.raw), err)
		}
	}
}

func corePoints() []int {
	pts := []int{1}
	if runtime.NumCPU() >= 4 {
		pts = append(pts, 4)
	}
	if runtime.NumCPU() > 4 {
		pts = append(pts, runtime.NumCPU())
	}
	return pts
}

// --- Figure 7: BitReader -------------------------------------------------

func BenchmarkFig7BitReader(b *testing.B) {
	data := workloads.Random(4<<20, 7)
	for _, bits := range []uint{1, 2, 8, 13, 15, 24, 30} {
		b.Run(byName("bits", int(bits)), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				br := bitio.NewBitReaderBytes(data)
				total := uint64(len(data)) * 8
				var sink uint64
				for pos := uint64(0); pos+uint64(bits) <= total; pos += uint64(bits) {
					v, err := br.Read(bits)
					if err != nil {
						b.Fatal(err)
					}
					sink ^= v
				}
				_ = sink
			}
		})
	}
}

// --- Figure 8: SharedFileReader strided reads ----------------------------

func BenchmarkFig8SharedReader(b *testing.B) {
	data := workloads.Random(64<<20, 8)
	src := filereader.MemoryReader(data)
	shared := filereader.NewShared(src)
	for _, threads := range corePoints() {
		b.Run(byName("threads", threads), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				const chunk = 128 << 10
				errs := make(chan error, threads)
				for t := 0; t < threads; t++ {
					go func(t int) {
						buf := make([]byte, chunk)
						var err error
						for off := int64(t) * chunk; off < int64(len(data)); off += int64(threads) * chunk {
							if _, err = shared.ReadAt(buf, off); err != nil {
								break
							}
						}
						errs <- err
					}(t)
				}
				for t := 0; t < threads; t++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Table 1: filter funnel ----------------------------------------------

func BenchmarkTable1Funnel(b *testing.B) {
	data := workloads.Random(2<<20, 1)
	positions := uint64(len(data))*8 - 2400
	b.SetBytes(int64(positions / 8))
	for i := 0; i < b.N; i++ {
		blockfinder.ScanFunnel(data, positions)
	}
}

// --- Table 2 components live next to their packages; the root view
// --- exercises the two finders on realistic compressed input.

func BenchmarkTable2Finders(b *testing.B) {
	f := getFixture(b, "b64-16M", workloads.Base64, 16<<20, "pigz -6")
	for _, v := range []struct {
		name   string
		finder blockfinder.Finder
		n      int
	}{
		{"DBF-rapidgzip", blockfinder.NewDynamicFinder(), 4 << 20},
		{"DBF-skipLUT", blockfinder.NewSkipLUTFinder(), 2 << 20},
		{"DBF-pugz", blockfinder.NewPugzFinder(), 1 << 20},
		{"NBF", blockfinder.StoredFinder{}, 8 << 20},
	} {
		data := f.comp
		if v.n < len(data) {
			data = data[:v.n]
		}
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				blockfinder.ScanAll(v.finder, data, -1)
			}
		})
	}
}

// --- Figures 9-11: weak-scaling decompression ----------------------------

func benchScaling(b *testing.B, name string, gen func(int, uint64) []byte, pugzOK bool) {
	for _, p := range corePoints() {
		f := getFixture(b, name, gen, 32<<20, "pigz -6")
		b.Run(byName("rapidgzip/P", p), func(b *testing.B) {
			benchDecompress(b, f, Options{Parallelism: p}, false)
		})
		b.Run(byName("rapidgzip-index/P", p), func(b *testing.B) {
			benchDecompress(b, f, Options{Parallelism: p}, true)
		})
		if pugzOK {
			b.Run(byName("pugz-sync/P", p), func(b *testing.B) {
				b.SetBytes(int64(len(f.raw)))
				for i := 0; i < b.N; i++ {
					if err := pugz.Decompress(f.comp, io.Discard, pugz.Options{
						Threads: p, Sync: true, ChunkSize: 4 * scaledChunk(len(f.comp), p), CheckPrintable: true,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Single-threaded baselines: stdlib flate stands in for igzip.
	f := getFixture(b, name, gen, 32<<20, "pigz -6")
	b.Run("igzip-stdlib/P=1", func(b *testing.B) {
		b.SetBytes(int64(len(f.raw)))
		for i := 0; i < b.N; i++ {
			zr, err := gzip.NewReader(bytes.NewReader(f.comp))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, zr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig9Base64(b *testing.B)   { benchScaling(b, "fig9-b64", workloads.Base64, true) }
func BenchmarkFig10Silesia(b *testing.B) { benchScaling(b, "fig10-sil", workloads.SilesiaLike, false) }
func BenchmarkFig11FASTQ(b *testing.B)   { benchScaling(b, "fig11-fq", workloads.FASTQ, true) }

// --- Figure 12: chunk-size sweep ------------------------------------------

func BenchmarkFig12ChunkSize(b *testing.B) {
	f := getFixture(b, "fig12-b64", workloads.Base64, 48<<20, "pigz -6")
	p := runtime.NumCPU()
	if p > 16 {
		p = 16
	}
	for _, cs := range []int{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		b.Run(fmtChunk(cs), func(b *testing.B) {
			benchDecompress(b, f, Options{Parallelism: p, ChunkSize: cs}, false)
		})
	}
}

// --- Table 3: compressor matrix -------------------------------------------

func BenchmarkTable3Compressors(b *testing.B) {
	p := runtime.NumCPU()
	for _, preset := range []string{"gzip -6", "pigz -6", "bgzip -l 6", "bgzip -l 0", "igzip -1", "igzip -0"} {
		f := getFixture(b, "t3-"+preset, workloads.SilesiaLike, 24<<20, preset)
		b.Run(sanitize(preset), func(b *testing.B) {
			benchDecompress(b, f, Options{Parallelism: p}, false)
		})
	}
}

// --- Table 4: cross-format comparison --------------------------------------

func BenchmarkTable4Formats(b *testing.B) {
	data := workloads.SilesiaLike(24<<20, 44)
	p := runtime.NumCPU()

	gz := getFixture(b, "t4-gzip", workloads.SilesiaLike, 24<<20, "gzip -6")
	b.Run("gzip-rapidgzip", func(b *testing.B) { benchDecompress(b, gz, Options{Parallelism: p}, false) })
	b.Run("gzip-rapidgzip-index", func(b *testing.B) { benchDecompress(b, gz, Options{Parallelism: p}, true) })

	bgzf := getFixture(b, "t4-bgzf", workloads.SilesiaLike, 24<<20, "bgzip -l 6")
	b.Run("bgzf-rapidgzip", func(b *testing.B) { benchDecompress(b, bgzf, Options{Parallelism: p}, false) })

	bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 9, StreamSize: 900_000})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bzip2-lbzip2x", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			out, err := bzip2x.DecompressParallel(bz, p)
			if err != nil || len(out) != len(data) {
				b.Fatalf("%d bytes, %v", len(out), err)
			}
		}
	})

	pz := lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 1 << 20, BlockSize: 256 << 10})
	b.Run("pzstd-analog-lz4frames", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			out, err := lz4x.DecompressParallel(pz, p)
			if err != nil || len(out) != len(data) {
				b.Fatalf("%d bytes, %v", len(out), err)
			}
		}
	})

	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{BlockSize: 256 << 10})
	b.Run("lz4-serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			out, err := lz4x.Decompress(lz)
			if err != nil || len(out) != len(data) {
				b.Fatalf("%d bytes, %v", len(out), err)
			}
		}
	})
}

// --- helpers ----------------------------------------------------------------

func byName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func fmtChunk(cs int) string {
	if cs >= 1<<20 {
		return itoa(cs>>20) + "MiB"
	}
	return itoa(cs>>10) + "KiB"
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ':
			out = append(out, '_')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
