package rapidgzip

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writerCorpus builds compressible-but-varied input for writer tests.
func writerCorpus(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dogs", "012345"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(4) == 0 {
			b.WriteByte(byte(rng.Intn(256)))
		}
		b.WriteByte(' ')
	}
	return b.Bytes()[:n]
}

// TestCreateThenOpenCounterAsserted is the tentpole acceptance test:
// Create an archive, reopen it through the emitted sidecar, and
// counter-assert that the reopen was free — zero sizing passes, zero
// block-finder probes — while the archive reports full Parallel and
// RandomAccess capabilities and decodes byte-exact.
func TestCreateThenOpenCounterAsserted(t *testing.T) {
	data := writerCorpus(700_000, 1)
	for _, tc := range []struct {
		name string
		ext  string
		opts []WriterOption
	}{
		{"gzip", ".gz", []WriterOption{WithShardSize(64 << 10)}},
		{"bgzf", ".bgz", nil},
		{"zstd", ".zst", []WriterOption{WithShardSize(64 << 10), WithContentChecksum(true)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "archive"+tc.ext)
			w, err := Create(path, append(tc.opts, WithWriterParallelism(4))...)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			if _, err := w.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st := w.Stats()
			if st.Shards < 2 {
				t.Fatalf("only %d shards encoded; the test needs a multi-shard archive", st.Shards)
			}
			if st.UncompressedBytes != uint64(len(data)) {
				t.Fatalf("Stats counted %d uncompressed bytes, want %d", st.UncompressedBytes, len(data))
			}
			if _, err := os.Stat(path + IndexSuffix); err != nil {
				t.Fatalf("Create left no sidecar: %v", err)
			}

			a, err := Open(path) // sidecar is auto-discovered
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer a.Close()
			got, err := io.ReadAll(a)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
			}
			s := a.Stats()
			if s.SizingPasses != 0 {
				t.Fatalf("reopen cost %d sizing passes, want 0 (index not honoured)", s.SizingPasses)
			}
			if s.FinderProbes != 0 {
				t.Fatalf("reopen ran %d block-finder probes, want 0", s.FinderProbes)
			}
			caps := a.Capabilities()
			if !caps.Parallel || !caps.RandomAccess {
				t.Fatalf("capabilities %+v, want Parallel and RandomAccess", caps)
			}
			// Random access actually works at an interior offset.
			buf := make([]byte, 1000)
			off := int64(len(data) / 2)
			if _, err := a.ReadAt(buf, off); err != nil {
				t.Fatalf("ReadAt(%d): %v", off, err)
			}
			if !bytes.Equal(buf, data[off:off+1000]) {
				t.Fatal("ReadAt content mismatch")
			}
		})
	}
}

// TestCreateRoundTripMatrix sweeps WriterOption combinations and
// checks every archive decodes byte-exact through Open — including
// boundary sizes (empty, one byte, exact shard multiples).
func TestCreateRoundTripMatrix(t *testing.T) {
	shard := 32 << 10
	sizes := []int{0, 1, shard, shard + 1, 3*shard - 7}
	type combo struct {
		name string
		opts []WriterOption
	}
	combos := []combo{
		{"gzip-sharded-l1", []WriterOption{WithWriterFormat(FormatGzip), WithShardSize(shard), WithLevel(1)}},
		{"gzip-sharded-l6", []WriterOption{WithWriterFormat(FormatGzip), WithShardSize(shard), WithLevel(6)}},
		{"gzip-sharded-l9", []WriterOption{WithWriterFormat(FormatGzip), WithShardSize(shard), WithLevel(9)}},
		{"gzip-stored", []WriterOption{WithWriterFormat(FormatGzip), WithShardSize(shard), WithLevel(0)}},
		{"bgzf", []WriterOption{WithWriterFormat(FormatBGZF), WithLevel(6)}},
		{"zstd-multiframe", []WriterOption{WithWriterFormat(FormatZstd), WithShardSize(shard), WithLevel(1)}},
		{"zstd-stored", []WriterOption{WithWriterFormat(FormatZstd), WithShardSize(shard), WithLevel(0)}},
		{"zstd-checksummed", []WriterOption{WithWriterFormat(FormatZstd), WithShardSize(shard), WithLevel(1), WithContentChecksum(true)}},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			for _, n := range sizes {
				data := writerCorpus(n, int64(n)+7)
				path := filepath.Join(t.TempDir(), "m.bin")
				w, err := Create(path, append(c.opts, WithWriterParallelism(3))...)
				if err != nil {
					t.Fatalf("Create: %v", err)
				}
				if _, err := w.Write(data); err != nil {
					t.Fatalf("n=%d Write: %v", n, err)
				}
				if err := w.Close(); err != nil {
					t.Fatalf("n=%d Close: %v", n, err)
				}
				a, err := Open(path)
				if err != nil {
					t.Fatalf("n=%d Open: %v", n, err)
				}
				got, err := io.ReadAll(a)
				a.Close()
				if err != nil {
					t.Fatalf("n=%d read: %v", n, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("n=%d mismatch: got %d bytes", n, len(got))
				}
			}
		})
	}
}

// TestCreateReferenceCLIs decodes our archives with the reference
// command-line tools where available — the interop half of the
// round-trip matrix.
func TestCreateReferenceCLIs(t *testing.T) {
	data := writerCorpus(300_000, 5)
	run := func(t *testing.T, tool string, args []string, path string) []byte {
		if _, err := exec.LookPath(tool); err != nil {
			t.Skipf("%s not in PATH", tool)
		}
		cmd := exec.Command(tool, args...)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		cmd.Stdin = f
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s: %v (%s)", tool, err, errb.String())
		}
		return out.Bytes()
	}
	t.Run("gzip-d", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "x.gz")
		w, _ := Create(path, WithShardSize(48<<10), WithWriterParallelism(4))
		w.Write(data)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := run(t, "gzip", []string{"-dc"}, path); !bytes.Equal(got, data) {
			t.Fatalf("gzip -d output mismatch (%d bytes)", len(got))
		}
	})
	t.Run("gzip-d-bgzf", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "x.bgz")
		w, _ := Create(path, WithWriterParallelism(4))
		w.Write(data)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := run(t, "gzip", []string{"-dc"}, path); !bytes.Equal(got, data) {
			t.Fatalf("gzip -d BGZF output mismatch (%d bytes)", len(got))
		}
	})
	t.Run("zstd-d", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "x.zst")
		w, _ := Create(path, WithShardSize(48<<10), WithWriterParallelism(4), WithContentChecksum(true))
		w.Write(data)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := run(t, "zstd", []string{"-dc"}, path); !bytes.Equal(got, data) {
			t.Fatalf("zstd -d output mismatch (%d bytes)", len(got))
		}
	})
}

// TestCreateGzipStdlibInterop always runs (no external tool): the
// sharded single-member gzip output must satisfy compress/gzip,
// including the combined footer CRC it verifies at EOF.
func TestCreateGzipStdlibInterop(t *testing.T) {
	data := writerCorpus(200_000, 13)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithShardSize(32<<10), WithWriterParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr) // ReadAll reaches EOF, which checks CRC32+ISIZE
	if err != nil {
		t.Fatalf("stdlib decode: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("stdlib close: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stdlib round trip mismatch")
	}
}

// TestNewWriterExportIndex checks the bring-your-own-destination path:
// NewWriter into a buffer, ExportIndex after Close, then Open the
// bytes with the exported index via OpenBytes+ImportIndex semantics
// (WithIndexFile on a temp file).
func TestNewWriterExportIndex(t *testing.T) {
	data := writerCorpus(400_000, 21)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithWriterFormat(FormatZstd), WithShardSize(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ExportIndex(io.Discard); err == nil {
		t.Fatal("ExportIndex before Close succeeded")
	}
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ixPath := filepath.Join(dir, "x.rgzidx")
	ixf, err := os.Create(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ExportIndex(ixf); err != nil {
		t.Fatalf("ExportIndex: %v", err)
	}
	ixf.Close()
	a, err := OpenBytes(buf.Bytes(), WithIndexFile(ixPath))
	if err != nil {
		t.Fatalf("OpenBytes with index: %v", err)
	}
	defer a.Close()
	if s := a.Stats(); s.SizingPasses != 0 {
		t.Fatalf("SizingPasses = %d, want 0", s.SizingPasses)
	}
	got, err := io.ReadAll(a)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip via exported index failed: %v", err)
	}
}

// TestWriterOptionErrors table-tests the writer option surface's typed
// failures, plus the read side's new ErrConflictingOptions.
func TestWriterOptionErrors(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.gz")
	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"unsupported writer format bzip2", func() error {
			_, err := Create(tmp, WithWriterFormat(FormatBzip2))
			return err
		}, ErrUnsupportedFormat},
		{"unsupported writer format lz4", func() error {
			_, err := NewWriter(io.Discard, WithWriterFormat(FormatLZ4))
			return err
		}, ErrUnsupportedFormat},
		{"sidecar with and without", func() error {
			_, err := Create(tmp, WithIndexSidecar(tmp+".idx"), WithoutIndexSidecar())
			return err
		}, ErrConflictingOptions},
		{"cache size under shared pool", func() error {
			p := NewCachePool(1 << 20)
			_, err := Open(tmp, WithSharedPool(p), WithAccessCacheSize(8))
			return err
		}, ErrConflictingOptions},
		{"cache size under shared pool, reversed order", func() error {
			p := NewCachePool(1 << 20)
			_, err := Open(tmp, WithAccessCacheSize(8), WithSharedPool(p))
			return err
		}, ErrConflictingOptions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.do()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	// Level/shard/parallelism validation is eager, before any file I/O.
	if _, err := NewWriter(io.Discard, WithLevel(10)); err == nil {
		t.Fatal("level 10 accepted")
	}
	if _, err := NewWriter(io.Discard, WithShardSize(-1)); err == nil {
		t.Fatal("negative shard size accepted")
	}
	if _, err := NewWriter(io.Discard, WithWriterParallelism(-1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	// Write after Close reports the typed ErrClosed.
	w, _ := NewWriter(io.Discard)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after Close = %v, want ErrClosed", err)
	}
}

// TestCreateFormatInference checks extension-based format selection.
func TestCreateFormatInference(t *testing.T) {
	dir := t.TempDir()
	for ext, want := range map[string]Format{
		".gz": FormatGzip, ".bgz": FormatBGZF, ".bgzf": FormatBGZF,
		".zst": FormatZstd, ".zstd": FormatZstd, ".bin": FormatGzip,
	} {
		w, err := Create(filepath.Join(dir, "f"+strings.ReplaceAll(ext, ".", "_")+ext))
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if got := w.Format(); got != want {
			t.Fatalf("ext %s inferred %v, want %v", ext, got, want)
		}
		w.Close()
	}
}

// TestCreateWithoutSidecar checks WithoutIndexSidecar leaves no index
// file but keeps ExportIndex working.
func TestCreateWithoutSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.gz")
	w, err := Create(path, WithoutIndexSidecar(), WithShardSize(16<<10))
	if err != nil {
		t.Fatal(err)
	}
	w.Write(writerCorpus(50_000, 2))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + IndexSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sidecar exists despite WithoutIndexSidecar: %v", err)
	}
	var ix bytes.Buffer
	if err := w.ExportIndex(&ix); err != nil {
		t.Fatalf("ExportIndex: %v", err)
	}
	if ix.Len() == 0 {
		t.Fatal("empty exported index")
	}
}
