package rapidgzip

import (
	"fmt"

	"repro/internal/gzindex"
	"repro/internal/gzipw"
	"repro/internal/zstdx"
)

// bgzfGroupTarget is the compressed bytes grouped under one seek point
// in a BGZF sidecar — the same members-per-span batching the read
// side's metadata scan applies, so one decode task amortises header
// parsing over many small members.
const bgzfGroupTarget = 512 << 10

// buildIndex assembles the RGZIDX04 index from the checkpoints the
// encoder recorded — the exact geometry the read side would recover by
// scanning the file, but written from knowledge instead of discovery.
func (w *writer) buildIndex() (*gzindex.Index, error) {
	fp := w.tracked.fingerprint()
	ix := gzindex.New(0)
	ix.Finalized = true
	ix.SourceFP = &fp
	switch w.format {
	case FormatGzip:
		return ix, w.fillGzipIndex(ix)
	case FormatBGZF:
		return ix, w.fillBGZFIndex(ix)
	case FormatZstd:
		return ix, w.fillZstdIndex(ix)
	}
	return nil, fmt.Errorf("%w: no index for %v", ErrUnsupportedFormat, w.format)
}

// fillGzipIndex emits the single-member sharded-gzip geometry: one
// member-start point at bit 0 (decoded by header parsing, no window
// needed), one point per subsequent shard boundary — byte-aligned by
// construction, and carrying an *empty* window because shards reset
// the dictionary, so the stdlib-delegation fast path decodes them with
// no priming bytes at all — and the member's end mark with the
// combined CRC32, which keeps architecture-level verification alive
// after reopen.
func (w *writer) fillGzipIndex(ix *gzindex.Index) error {
	cps := w.gz.Checkpoints()
	total := uint64(w.gz.UncompressedSize())
	ix.CompressedSize = uint64(w.gz.CompressedSize())
	ix.UncompressedSize = total
	ix.MemberMarksComplete = true
	if err := ix.Add(gzindex.SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
		return err
	}
	lastBit, lastDecomp := uint64(0), uint64(0)
	for _, cp := range cps[min(1, len(cps)):] {
		lastBit, lastDecomp = uint64(cp.CompOff)*8, uint64(cp.DecompOff)
		if err := ix.Add(gzindex.SeekPoint{
			CompressedBitOffset: lastBit,
			UncompressedOffset:  lastDecomp,
		}, []byte{}); err != nil {
			return err
		}
	}
	ix.AddMemberEnd(lastBit, gzindex.MemberEnd{RelEnd: total - lastDecomp, CRC32: w.gz.CRC32()})
	return nil
}

// fillBGZFIndex emits the member-per-chunk geometry the read side's
// metadata scan would build: members grouped into spans of about
// bgzfGroupTarget compressed bytes, one member-start seek point per
// group, and a member-end mark (footer CRC32) per member — plus the
// trailing EOF member's zero mark.
func (w *writer) fillBGZFIndex(ix *gzindex.Index) error {
	cps := w.gz.Checkpoints()
	total := uint64(w.gz.UncompressedSize())
	ix.CompressedSize = uint64(w.gz.CompressedSize())
	ix.UncompressedSize = total
	ix.MemberMarksComplete = true
	groupBit, groupDecomp := uint64(0), uint64(0)
	open := false // a group point exists and can still take members
	for _, cp := range cps {
		if !open {
			groupBit, groupDecomp = uint64(cp.CompOff)*8, uint64(cp.DecompOff)
			if err := ix.Add(gzindex.SeekPoint{
				CompressedBitOffset: groupBit,
				UncompressedOffset:  groupDecomp,
				AtMemberStart:       true,
			}, nil); err != nil {
				return err
			}
			open = true
		}
		ix.AddMemberEnd(groupBit, gzindex.MemberEnd{
			RelEnd: uint64(cp.DecompOff+cp.DecompSize) - groupDecomp,
			CRC32:  cp.CRC32,
		})
		if uint64(cp.CompEnd)-groupBit/8 >= bgzfGroupTarget {
			open = false
		}
	}
	if !open {
		// The EOF member needs a span to land in; an empty input (or a
		// group that closed exactly at the last member) opens one at the
		// tail, mirroring how the scan's final flush covers the marker.
		groupBit, groupDecomp = uint64(w.gz.CompressedSize()-int64(len(gzipw.BGZFEOFMarker)))*8, total
		if err := ix.Add(gzindex.SeekPoint{
			CompressedBitOffset: groupBit,
			UncompressedOffset:  groupDecomp,
			AtMemberStart:       true,
		}, nil); err != nil {
			return err
		}
	}
	// The canonical EOF marker is itself a member: ISIZE 0, CRC 0.
	ix.AddMemberEnd(groupBit, gzindex.MemberEnd{RelEnd: total - groupDecomp, CRC32: 0})
	return nil
}

// fillZstdIndex persists the per-frame checkpoint table — the same
// section a read-side ExportIndex writes, flagged metadata-sized
// because every frame header carries its content size.
func (w *writer) fillZstdIndex(ix *gzindex.Index) error {
	cps := w.zw.Checkpoints()
	ix.CompressedSize = uint64(w.zw.CompressedSize())
	ix.UncompressedSize = uint64(w.zw.UncompressedSize())
	ct := &gzindex.CheckpointTable{Format: zstdx.FormatTag, Flags: w.zw.Flags()}
	ct.Spans = make([]gzindex.Checkpoint, len(cps))
	for i, cp := range cps {
		ct.Spans[i] = gzindex.Checkpoint{
			CompOff: cp.CompOff, CompEnd: cp.CompEnd,
			DecompOff: cp.DecompOff, DecompSize: cp.DecompSize,
		}
	}
	ix.Checkpoints = ct
	return nil
}
