package rapidgzip

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWriterRoundTrip drives the write side with arbitrary payloads
// and option combinations, and requires every archive it produces to
// decode byte-exact through Open. The writer must never emit an
// archive its own reader rejects — that invariant is the whole point
// of a symmetric Create/Open surface.
func FuzzWriterRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), uint8(0), uint16(64), uint8(6))
	f.Add([]byte{}, uint8(1), uint16(1), uint8(0))
	f.Add(bytes.Repeat([]byte("abc"), 5000), uint8(2), uint16(512), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 255}, uint8(2), uint16(2), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, formatSel uint8, shardKiB uint16, level uint8) {
		format := []Format{FormatGzip, FormatBGZF, FormatZstd}[int(formatSel)%3]
		opts := []WriterOption{
			WithWriterFormat(format),
			WithWriterParallelism(2),
			// Small shards exercise many boundaries; cap the count so a
			// large fuzz payload cannot explode the shard table.
			WithShardSize(max(int(shardKiB)*64, 1024)),
			WithLevel(int(level) % 10),
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, opts...)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		a, err := OpenBytes(buf.Bytes(), WithParallelism(2))
		if err != nil {
			t.Fatalf("OpenBytes rejected our own output: %v", err)
		}
		defer a.Close()
		got, err := io.ReadAll(a)
		if err != nil {
			t.Fatalf("decoding our own output: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(data), len(got))
		}
	})
}
