package rapidgzip

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gzindex"
	"repro/internal/gzipw"
	"repro/internal/zstdx"
)

// Writer is the write-side mirror of Archive: one interface over a
// parallel, seekable-by-construction compressor for gzip, BGZF or
// Zstandard output. Input is cut into fixed-size shards compressed
// concurrently on a worker pool and joined in order, so the output is
// what the paper's Table 3 / §4.8–4.9 identify as the parallel-
// decompressible shape: independent chunks behind byte-aligned sync
// points (gzip), member-per-chunk framing (BGZF), or one sized frame
// per shard (zstd). The per-shard checkpoints are recorded while
// encoding, so ExportIndex (and Create's automatic sidecar) emit an
// RGZIDX04 index without re-reading anything — archives are born
// seekable, and reopening them with the index costs zero sizing
// passes.
//
// A Writer is not safe for concurrent use: one producer writes, the
// encoding parallelizes underneath.
type Writer interface {
	io.Writer
	io.ReaderFrom
	io.Closer

	// Stats returns a snapshot of writer activity counters. Final after
	// Close.
	Stats() WriterStats
	// ExportIndex serialises the index built during encoding (seek
	// points for gzip/BGZF, the checkpoint table for zstd). Only valid
	// after Close, when the geometry is final.
	ExportIndex(w io.Writer) error
	// Format reports the container format being written.
	Format() Format
}

// WriterStats counts write-side activity.
type WriterStats struct {
	// Shards is the number of independently compressed work units
	// (gzip shards, BGZF members, zstd frames).
	Shards uint64
	// UncompressedBytes and CompressedBytes are the totals consumed and
	// produced. CompressedBytes is final only after Close (trailers and
	// in-flight shards land there).
	UncompressedBytes, CompressedBytes uint64
}

// ErrConflictingOptions reports two options that cannot be honoured
// together (e.g. WithSharedPool with WithAccessCacheSize, or a writer
// format no encoder exists for combined with a format-specific knob).
// Test with errors.Is.
var ErrConflictingOptions = errors.New("rapidgzip: conflicting options")

// writerConfig is the resolved configuration of a Create/NewWriter
// call.
type writerConfig struct {
	format      Format // FormatUnknown = infer from path extension / default gzip
	level       int    // -1 = default (6)
	shardSize   int
	parallelism int
	checksums   bool   // zstd per-frame content checksums
	sidecar     string // explicit sidecar path ("" = default for Create)
	noSidecar   bool
}

// A WriterOption configures Create or NewWriter. Like the read side's
// Option, every With* function validates eagerly and the first error
// wins.
type WriterOption func(*writerConfig) error

func resolveWriter(opts []WriterOption) (writerConfig, error) {
	cfg := writerConfig{level: -1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return writerConfig{}, err
		}
	}
	if cfg.sidecar != "" && cfg.noSidecar {
		return writerConfig{}, fmt.Errorf("%w: WithIndexSidecar with WithoutIndexSidecar", ErrConflictingOptions)
	}
	return cfg, nil
}

// WithWriterFormat selects the output container format instead of
// inferring it from the file extension (Create) or defaulting to gzip
// (NewWriter). Supported: FormatGzip, FormatBGZF, FormatZstd. The
// read side decompresses bzip2 and LZ4 too, but no parallel encoder
// exists for them here, so they are rejected eagerly.
func WithWriterFormat(f Format) WriterOption {
	return func(c *writerConfig) error {
		switch f {
		case FormatGzip, FormatBGZF, FormatZstd:
			c.format = f
			return nil
		}
		return fmt.Errorf("%w: no encoder for %v", ErrUnsupportedFormat, f)
	}
}

// WithWriterParallelism sets the number of encode workers. Zero (the
// default) selects runtime.NumCPU() — the write-side mirror of
// WithParallelism.
func WithWriterParallelism(n int) WriterOption {
	return func(c *writerConfig) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative parallelism %d", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithLevel sets the compression level, 0–9. Level 0 stores without
// compression; for gzip/BGZF levels 1–9 trade speed for ratio like
// zlib's, while the zstd encoder has a single matcher and treats every
// non-zero level the same. The default is 6.
func WithLevel(n int) WriterOption {
	return func(c *writerConfig) error {
		if n < 0 || n > 9 {
			return fmt.Errorf("rapidgzip: invalid compression level %d (want 0..9)", n)
		}
		c.level = n
		return nil
	}
}

// WithShardSize sets the uncompressed bytes compressed independently
// per shard — the parallel work unit and the random-access granularity
// of the born archive. Zero selects 1 MiB. BGZF ignores it: the format
// caps members at 65280 bytes.
func WithShardSize(n int) WriterOption {
	return func(c *writerConfig) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative shard size %d", n)
		}
		c.shardSize = n
		return nil
	}
}

// WithContentChecksum adds an xxHash64 content checksum to every zstd
// frame, so parallel decodes verify integrity. Gzip and BGZF always
// carry CRC32s (the format requires them), so this option only changes
// zstd output.
func WithContentChecksum(v bool) WriterOption {
	return func(c *writerConfig) error {
		c.checksums = v
		return nil
	}
}

// WithIndexSidecar writes the RGZIDX04 index to path on Close instead
// of Create's default sibling "<file>.rgzidx". For NewWriter — which
// writes no sidecar by default, having no path — this opts one in.
func WithIndexSidecar(path string) WriterOption {
	return func(c *writerConfig) error {
		if path == "" {
			return fmt.Errorf("rapidgzip: empty index sidecar path")
		}
		c.sidecar = path
		return nil
	}
}

// WithoutIndexSidecar disables Create's automatic index sidecar. The
// index is still built while encoding and remains available through
// ExportIndex after Close.
func WithoutIndexSidecar() WriterOption {
	return func(c *writerConfig) error {
		c.noSidecar = true
		return nil
	}
}

// formatForPath infers the output format from a file extension,
// defaulting to gzip.
func formatForPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bgz", ".bgzf":
		return FormatBGZF
	case ".zst", ".zstd", ".tzst":
		return FormatZstd
	}
	return FormatGzip
}

// Create creates the file at path and returns a Writer compressing
// into it — the write-side mirror of Open. The format comes from
// WithWriterFormat or, absent that, the file extension (".bgz"/".bgzf"
// → BGZF, ".zst"/".zstd"/".tzst" → zstd, anything else gzip). On Close
// the index built during encoding is written to the sibling
// "<path>.rgzidx" (the file Open auto-discovers), so
//
//	w, _ := rapidgzip.Create("big.gz")
//	io.Copy(w, src)
//	w.Close()
//	a, _ := rapidgzip.Open("big.gz")
//
// reopens with zero sizing passes and full Parallel/RandomAccess
// capabilities. Disable the sidecar with WithoutIndexSidecar, or
// redirect it with WithIndexSidecar.
func Create(path string, opts ...WriterOption) (Writer, error) {
	cfg, err := resolveWriter(opts)
	if err != nil {
		return nil, err
	}
	if cfg.format == FormatUnknown {
		cfg.format = formatForPath(path)
	}
	if cfg.sidecar == "" && !cfg.noSidecar {
		cfg.sidecar = path + IndexSuffix
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSourceRead, err)
	}
	w, err := newWriter(f, cfg)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w.ownedFile = f
	return w, nil
}

// NewWriter returns a Writer compressing into w — Create for callers
// that bring their own destination (a pipe, an HTTP response, a
// bytes.Buffer). The format comes from WithWriterFormat, defaulting to
// gzip. No index sidecar is written (there is no path); the index is
// available through ExportIndex after Close, or via WithIndexSidecar.
func NewWriter(w io.Writer, opts ...WriterOption) (Writer, error) {
	cfg, err := resolveWriter(opts)
	if err != nil {
		return nil, err
	}
	if cfg.format == FormatUnknown {
		cfg.format = FormatGzip
	}
	return newWriter(w, cfg)
}

// newWriter wires the format's parallel encoder behind the tracked
// output.
func newWriter(out io.Writer, cfg writerConfig) (*writer, error) {
	level := cfg.level
	if level < 0 {
		level = 6
	}
	w := &writer{format: cfg.format, sidecar: cfg.sidecar, tracked: &fpWriter{out: out}}
	var err error
	switch cfg.format {
	case FormatGzip, FormatBGZF:
		w.gz, err = gzipw.NewWriter(w.tracked, gzipw.WriterOptions{
			Level:       level,
			ShardSize:   cfg.shardSize,
			Parallelism: cfg.parallelism,
			BGZF:        cfg.format == FormatBGZF,
		})
	case FormatZstd:
		w.zw, err = zstdx.NewWriter(w.tracked, zstdx.WriterOptions{
			Level:           level,
			ShardSize:       cfg.shardSize,
			Parallelism:     cfg.parallelism,
			ContentChecksum: cfg.checksums,
		})
	default:
		err = fmt.Errorf("%w: no encoder for %v", ErrUnsupportedFormat, cfg.format)
	}
	if err != nil {
		return nil, err
	}
	return w, nil
}

// writer implements Writer over one of the format encoders, tracking
// the output fingerprint for the emitted index.
type writer struct {
	format    Format
	gz        *gzipw.Writer
	zw        *zstdx.Writer
	tracked   *fpWriter
	sidecar   string
	ownedFile *os.File // Create only; closed (and the sidecar written) on Close
	closed    bool
	err       error
}

func (w *writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("%w: write after Close", ErrClosed)
	}
	if w.gz != nil {
		return w.gz.Write(p)
	}
	return w.zw.Write(p)
}

func (w *writer) ReadFrom(r io.Reader) (int64, error) {
	if w.closed {
		return 0, fmt.Errorf("%w: write after Close", ErrClosed)
	}
	if w.gz != nil {
		return w.gz.ReadFrom(r)
	}
	return w.zw.ReadFrom(r)
}

// Close drains the encode pipeline, writes the format trailer, writes
// the index sidecar if one was requested, and closes the file when the
// writer owns one (Create). Close is idempotent.
func (w *writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.gz != nil {
		w.err = w.gz.Close()
	} else {
		w.err = w.zw.Close()
	}
	if w.err == nil && w.sidecar != "" {
		w.err = w.writeSidecar()
	}
	if w.ownedFile != nil {
		if cerr := w.ownedFile.Close(); w.err == nil {
			w.err = cerr
		}
	}
	return w.err
}

// writeSidecar exports the index atomically next to the archive: a
// temp file renamed into place, so a crash never leaves a truncated
// index for a later Open to trip on.
func (w *writer) writeSidecar() error {
	return writeFileAtomic(w.sidecar, w.ExportIndex)
}

func (w *writer) Stats() WriterStats {
	if w.gz != nil {
		return WriterStats{
			Shards:            uint64(len(w.gz.Checkpoints())),
			UncompressedBytes: uint64(w.gz.UncompressedSize()),
			CompressedBytes:   uint64(w.gz.CompressedSize()),
		}
	}
	return WriterStats{
		Shards:            uint64(len(w.zw.Checkpoints())),
		UncompressedBytes: uint64(w.zw.UncompressedSize()),
		CompressedBytes:   uint64(w.zw.CompressedSize()),
	}
}

func (w *writer) Format() Format { return w.format }

// ExportIndex serialises the RGZIDX04 index recorded while encoding.
// Only valid after Close: the trailer bytes and the final shard are
// part of the geometry.
func (w *writer) ExportIndex(dst io.Writer) error {
	if !w.closed {
		return errors.New("rapidgzip: ExportIndex before Close (the index geometry is final only then)")
	}
	if w.err != nil {
		return fmt.Errorf("rapidgzip: no index for a failed archive: %w", w.err)
	}
	ix, err := w.buildIndex()
	if err != nil {
		return err
	}
	_, err = ix.WriteTo(dst)
	return err
}

// --- fingerprint tracking -------------------------------------------------

// fpWriter tees the compressed output through head/tail trackers so
// the emitted index carries the same source fingerprint Open would
// compute (CRC32 of the first and last FingerprintSpan bytes).
type fpWriter struct {
	out  io.Writer
	size int64
	head []byte // first ≤FingerprintSpan bytes
	tail []byte // last ≤FingerprintSpan bytes
}

func (t *fpWriter) Write(p []byte) (int, error) {
	n, err := t.out.Write(p)
	w := p[:n]
	t.size += int64(n)
	if len(t.head) < gzindex.FingerprintSpan {
		t.head = append(t.head, w[:min(len(w), gzindex.FingerprintSpan-len(t.head))]...)
	}
	if len(w) >= gzindex.FingerprintSpan {
		t.tail = append(t.tail[:0], w[len(w)-gzindex.FingerprintSpan:]...)
	} else {
		t.tail = append(t.tail, w...)
		if over := len(t.tail) - gzindex.FingerprintSpan; over > 0 {
			t.tail = append(t.tail[:0], t.tail[over:]...)
		}
	}
	return n, err
}

// fingerprint reproduces gzindex.ComputeFingerprint over the bytes
// written: for outputs shorter than the span, head and tail are the
// same whole-file window.
func (t *fpWriter) fingerprint() gzindex.Fingerprint {
	span := int64(gzindex.FingerprintSpan)
	if t.size < span {
		span = t.size
	}
	return gzindex.Fingerprint{
		Head: crc32.ChecksumIEEE(t.head[:span]),
		Tail: crc32.ChecksumIEEE(t.tail[len(t.tail)-int(span):]),
	}
}
