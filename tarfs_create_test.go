package rapidgzip

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"testing/fstest"
)

// TestWriteTarThenTarFS closes the loop the ISSUE's satellite asks for:
// a directory streamed through WriteTar into Create-produced .tar.gz and
// .tar.zst archives must open through the existing TarFS path and serve
// every member byte-exact — with the sidecar making the reopen sizing-free.
func TestWriteTarThenTarFS(t *testing.T) {
	src := fstest.MapFS{
		"hello.txt":        {Data: []byte("hello from the write side")},
		"bin/large.dat":    {Data: bytes.Repeat([]byte("0123456789abcdef"), 64<<10)}, // 1 MiB
		"bin/empty":        {Data: nil},
		"docs/sub/note.md": {Data: []byte("# nested\n")},
	}
	for _, ext := range []string{".tar.gz", ".tar.zst"} {
		t.Run(ext, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "data"+ext)
			w, err := Create(path, WithShardSize(128<<10), WithWriterParallelism(3))
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			if err := WriteTar(w, src); err != nil {
				t.Fatalf("WriteTar: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := os.Stat(path + IndexSuffix); err != nil {
				t.Fatalf("expected index sidecar next to %s: %v", path, err)
			}

			a, err := Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer a.Close()
			tfs, err := TarFS(a)
			if err != nil {
				t.Fatalf("TarFS: %v", err)
			}
			for name, want := range src {
				got, err := fs.ReadFile(tfs, name)
				if err != nil {
					t.Fatalf("ReadFile(%s): %v", name, err)
				}
				if !bytes.Equal(got, want.Data) {
					t.Fatalf("%s: got %d bytes, want %d", name, len(got), len(want.Data))
				}
			}
			if st := a.Stats(); st.SizingPasses != 0 {
				t.Fatalf("sidecar reopen took %d sizing passes, want 0", st.SizingPasses)
			}
		})
	}
}
