// fastqcount streams a gzip-compressed FASTQ file (the bioinformatics
// workload of the paper's Figure 11 and of pugz's original use case)
// and tallies records and base counts while decompression runs on all
// cores.
//
//	go run ./examples/fastqcount [reads.fastq.gz]
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = demoFastq()
		fmt.Printf("no input given; demo file: %s\n", path)
	}

	r, err := rapidgzip.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	sc := bufio.NewScanner(bufio.NewReaderSize(r, 4<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var records, bases int64
	var baseCounts [256]int64
	line := 0
	for sc.Scan() {
		switch line % 4 {
		case 0:
			records++
		case 1:
			seq := sc.Bytes()
			bases += int64(len(seq))
			for _, b := range seq {
				baseCounts[b]++
			}
		}
		line++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	gc := float64(baseCounts['G']+baseCounts['C']) / float64(bases) * 100
	fmt.Printf("records: %d   bases: %d   GC content: %.1f%%\n", records, bases, gc)
	fmt.Printf("processed in %v (%.0f MB/s of decompressed data)\n",
		elapsed.Round(time.Millisecond), float64(bases)/1e6/elapsed.Seconds())
}

func demoFastq() string {
	data := workloads.FASTQ(48<<20, 3)
	opts, _ := gzipw.Preset("pigz -6")
	comp, _, err := gzipw.Compress(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "rapidgzip_demo.fastq.gz")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		log.Fatal(err)
	}
	return path
}
