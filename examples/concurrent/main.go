// concurrent demonstrates the paper's "fast concurrent access at two
// different offsets" design goal (§3): several goroutines read disjoint
// regions of the decompressed stream through one shared Reader, the
// access pattern a user-space filesystem like ratarmount generates.
// The multi-stream prefetcher keeps both access streams ahead.
//
//	go run ./examples/concurrent [file.gz]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = demoFile()
		fmt.Printf("no input given; demo file: %s\n", path)
	}

	r, err := rapidgzip.OpenOptions(path, rapidgzip.Options{
		Strategy:        "multistream",
		AccessCacheSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	size, err := r.Size()
	if err != nil {
		log.Fatal(err)
	}

	const readers = 4
	start := time.Now()
	var wg sync.WaitGroup
	totals := make([]int64, readers)
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine streams its own quarter of the file.
			lo := size * int64(g) / readers
			hi := size * int64(g+1) / readers
			buf := make([]byte, 1<<20)
			for off := lo; off < hi; {
				want := int64(len(buf))
				if hi-off < want {
					want = hi - off
				}
				n, err := r.ReadAt(buf[:want], off)
				totals[g] += int64(n)
				off += int64(n)
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total int64
	for g := 0; g < readers; g++ {
		if errs[g] != nil {
			log.Fatalf("reader %d: %v", g, errs[g])
		}
		total += totals[g]
	}
	st := r.Stats()
	fmt.Printf("%d concurrent readers consumed %d MiB in %v (%.0f MB/s aggregate)\n",
		readers, total>>20, elapsed.Round(time.Millisecond), float64(total)/1e6/elapsed.Seconds())
	fmt.Printf("chunks consumed: %d, speculative decodes: %d\n", st.ChunksConsumed, st.GuessTasks)
}

func demoFile() string {
	data := workloads.SilesiaLike(48<<20, 5)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "rapidgzip_concurrent_demo.gz")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		log.Fatal(err)
	}
	return path
}
