// multiformat demonstrates the format-agnostic front door: the same
// rapidgzip.Open call decompresses gzip, BGZF, bzip2, LZ4 and zstd inputs,
// dispatching on the content's magic bytes, and Capabilities reports
// what each backend can do.
//
//	go run ./examples/multiformat
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

func main() {
	data := workloads.Base64(4<<20, 7)
	dir, err := os.MkdirTemp("", "rapidgzip-multiformat")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	files := map[string][]byte{}
	if files["data.gz"], _, err = gzipw.Compress(data, gzipw.Options{Level: 6}); err != nil {
		log.Fatal(err)
	}
	if files["data.bgzf.gz"], _, err = gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true}); err != nil {
		log.Fatal(err)
	}
	if files["data.bz2"], err = bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 1 << 20}); err != nil {
		log.Fatal(err)
	}
	files["data.lz4"] = lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 1 << 20})
	files["data.zst"] = zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 1 << 20, ContentChecksum: true})

	fmt.Printf("%-14s %-8s %-72s %s\n", "file", "format", "capabilities", "round trip")
	for _, name := range []string{"data.gz", "data.bgzf.gz", "data.bz2", "data.lz4", "data.zst"} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			log.Fatal(err)
		}

		// One Open for every format: no hint, the content decides.
		a, err := rapidgzip.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := io.Copy(&out, a); err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !bytes.Equal(out.Bytes(), data) {
			status = "MISMATCH"
		}
		// Random access goes through the same interface where the
		// format supports it.
		if caps := a.Capabilities(); caps.Seek {
			probe := make([]byte, 64)
			if _, err := a.ReadAt(probe, int64(len(data)/2)); err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(probe, data[len(data)/2:len(data)/2+64]) {
				status = "READAT MISMATCH"
			}
		}
		fmt.Printf("%-14s %-8s %-72s %s\n", name, a.Format(), fmt.Sprintf("%+v", a.Capabilities()), status)
		a.Close()
	}
}
