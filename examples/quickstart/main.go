// Quickstart: decompress a gzip file on all cores with the public API.
//
// Run with a file argument to decompress it, or with no arguments to
// see a self-contained demo on generated data:
//
//	go run ./examples/quickstart [file.gz]
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = demoFile()
		fmt.Printf("no input given; demo file: %s\n", path)
	}

	// Open sniffs the format from the content — the same call would
	// handle a .bz2 or .lz4 input.
	r, err := rapidgzip.Open(path, rapidgzip.WithVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("detected format: %s (capabilities %+v)\n", r.Format(), r.Capabilities())

	start := time.Now()
	n, err := io.Copy(io.Discard, r) // replace io.Discard with any sink
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := r.Stats()
	fmt.Printf("decompressed %d MiB in %v (%.0f MB/s)\n", n>>20, elapsed.Round(time.Millisecond),
		float64(n)/1e6/elapsed.Seconds())
	fmt.Printf("chunks consumed: %d, speculative decodes: %d, on-demand decodes: %d\n",
		st.ChunksConsumed, st.GuessTasks, st.OnDemandDecodes)
	if gz, isGzip := r.(*rapidgzip.Reader); isGzip {
		ok, fails := gz.CRCVerified()
		fmt.Printf("checksums verified: %v (%d failures)\n", ok, fails)
	}
}

// demoFile writes a pigz-style compressed base64 workload to a temp
// file, the setup of the paper's Figure 9.
func demoFile() string {
	data := workloads.Base64(64<<20, 1)
	opts, _ := gzipw.Preset("pigz -6")
	comp, _, err := gzipw.Compress(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "rapidgzip_quickstart.gz")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		log.Fatal(err)
	}
	return path
}
