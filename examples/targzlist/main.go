// targzlist is the ratarmount scenario from the paper's introduction:
// random access into a gzip-compressed TAR archive without
// decompressing it from the front every time.
//
// It opens a .tar.gz, builds the seek-point index once, walks the TAR
// structure by *seeking* (headers only — file contents are skipped
// without being decompressed after index build), and then extracts one
// member by name via ReadAt.
//
//	go run ./examples/targzlist [archive.tar.gz [member]]
package main

import (
	"archive/tar"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

func main() {
	var path, member string
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = demoArchive()
		fmt.Printf("no input given; demo archive: %s\n", path)
	}
	if len(os.Args) > 2 {
		member = os.Args[2]
	}

	r, err := rapidgzip.Open(path, rapidgzip.WithStrategy("multistream")) // random access pattern
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	// One parallel pass builds the index; afterwards any offset is
	// reachable in constant time.
	start := time.Now()
	if err := r.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v\n", time.Since(start).Round(time.Millisecond))

	// Walk the TAR by seeking over file contents.
	type entry struct {
		name string
		off  int64 // decompressed offset of the file content
		size int64
	}
	var entries []entry
	tr := tar.NewReader(io.NewSectionReader(r, 0, 1<<62))
	for {
		hdr, err := tr.Next()
		if err == io.EOF || err != nil {
			break
		}
		// The section reader's position after Next() is the content
		// start; archive/tar knows sizes, so contents are skipped by
		// seeking inside the indexed stream, not by decompressing.
		entries = append(entries, entry{name: hdr.Name, size: hdr.Size})
	}
	fmt.Printf("%d entries:\n", len(entries))
	for i, e := range entries {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(entries)-10)
			break
		}
		fmt.Printf("  %-40s %10d bytes\n", e.name, e.size)
	}

	if member == "" && len(entries) > 0 {
		member = entries[len(entries)/2].name
	}
	// Extract one member via a fresh TAR walk; the indexed reader makes
	// the skip-to-member seek cheap.
	start = time.Now()
	tr = tar.NewReader(io.NewSectionReader(r, 0, 1<<62))
	for {
		hdr, err := tr.Next()
		if err != nil {
			log.Fatalf("member %q not found", member)
		}
		if hdr.Name == member {
			n, err := io.Copy(io.Discard, tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("extracted %q (%d bytes) in %v\n", member, n, time.Since(start).Round(time.Millisecond))
			return
		}
	}
}

// demoArchive compresses a Silesia-like TAR (the workloads generator
// already emits real TAR framing).
func demoArchive() string {
	data := workloads.SilesiaLike(32<<20, 7)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "rapidgzip_demo.tar.gz")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		log.Fatal(err)
	}
	return path
}
