package rapidgzip

import (
	"io"
	"os"
	"path/filepath"
)

// ExportIndexFile writes a's index (seek points for gzip/BGZF, the
// checkpoint table for bzip2/LZ4/zstd) to path atomically: the bytes
// land in a temp file in the same directory first and are renamed into
// place only when complete, so a crash mid-export never leaves a
// truncated index for a later Open to trip on. Parent directories are
// created as needed — the layout a shared index store wants, where
// "data/logs.gz" maps to "<store>/data/logs.gz.rgzidx".
//
// For gzip the export completes the seek-point index first (one full
// decompression pass if the file has not been fully indexed yet); for
// every other format the checkpoint table exists since open and the
// export is metadata-only.
func ExportIndexFile(a Archive, path string) error {
	return writeFileAtomic(path, a.ExportIndex)
}

// writeFileAtomic streams fill's output into path via a same-directory
// temp file renamed into place. On any failure the temp file is
// removed and path is left untouched.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens 0600; the index should be as readable as the
	// archive it describes (umask still applies via the archive itself,
	// so plain 0644 matches os.Create's default).
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
