package rapidgzip

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/spanengine"
)

// Options tunes a Reader. The zero value is ready to use.
//
// Deprecated: Options is the legacy flat configuration struct, kept so
// existing call sites compile and behave identically. New code should
// pass functional options (WithParallelism, WithChunkSize, ...) to Open
// or OpenBytes.
type Options struct {
	// Parallelism is the number of decompression workers. Zero selects
	// runtime.NumCPU(); the paper's -P flag.
	Parallelism int
	// ChunkSize is the compressed bytes handed to one worker task.
	// Zero selects the paper's 4 MiB default. Figure 12 of the paper
	// sweeps this parameter: too small wastes time in the block finder,
	// too large starves workers near the end of the file.
	ChunkSize int
	// VerifyChecksums enables CRC32 verification of every gzip member
	// against its footer while the stream is consumed sequentially.
	// Chunk checksums are combined with a GF(2) CRC-combine, so
	// verification is parallel too.
	VerifyChecksums bool
	// MaxPrefetch bounds the number of speculative chunk decodes in
	// flight. Zero selects twice the parallelism (the paper's default).
	MaxPrefetch int
	// AccessCacheSize is the capacity (in chunks) of the accessed-chunk
	// cache. It only matters for concurrent random access; sequential
	// decompression needs a single slot.
	AccessCacheSize int
	// Strategy selects the prefetch strategy: "adaptive" (default),
	// "fixed", or "multistream" (for concurrent access at several
	// offsets, e.g. serving a mounted TAR). Unknown names are rejected
	// when the reader is constructed.
	Strategy string
}

// strategyFor maps a strategy name to a fresh prefetch.Strategy
// instance (strategies are stateful, so every reader needs its own).
// nil means "the backend's default" (adaptive).
func strategyFor(name string) (prefetch.Strategy, error) {
	switch name {
	case "", "adaptive":
		return nil, nil
	case "fixed":
		return prefetch.NewFixed(), nil
	case "multistream":
		return prefetch.NewMultiStream(), nil
	}
	return nil, fmt.Errorf("rapidgzip: unknown prefetch strategy %q (want adaptive, fixed or multistream)", name)
}

func (o Options) toCore() (core.Config, error) {
	cfg := core.Config{
		Parallelism:     o.Parallelism,
		ChunkSize:       o.ChunkSize,
		MaxPrefetch:     o.MaxPrefetch,
		AccessCacheSize: o.AccessCacheSize,
		VerifyChecksums: o.VerifyChecksums,
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	strat, err := strategyFor(o.Strategy)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Strategy = strat // nil = core defaults to adaptive
	return cfg, nil
}

// toEngine builds the span-engine configuration the bzip2/LZ4/zstd
// backends run with — the same knobs as the gzip core, applied to the
// shared engine: Parallelism sizes the worker pool, MaxPrefetch bounds
// in-flight speculative span decodes, AccessCacheSize caps the span
// cache, Strategy picks the prefetcher.
func (o Options) toEngine() (spanengine.Config, error) {
	strat, err := strategyFor(o.Strategy)
	if err != nil {
		return spanengine.Config{}, err
	}
	threads := o.Parallelism
	if threads == 0 {
		threads = runtime.NumCPU()
	}
	return spanengine.Config{
		Threads:     threads,
		CacheSize:   o.AccessCacheSize,
		MaxPrefetch: o.MaxPrefetch,
		Strategy:    strat,
	}, nil
}

// config is the resolved configuration an Open call operates with.
type config struct {
	opts        Options
	format      Format // FormatUnknown means sniff the content
	indexFile   string // explicit index to import; implies no discovery
	noDiscovery bool
	inMemory    bool       // load the whole file instead of serving it file-backed
	pool        *CachePool // shared span-cache pool (WithSharedPool); nil = private cache
}

// coreConfig resolves the gzip/BGZF core configuration, applying the
// shared pool when one was requested.
func (c config) coreConfig() (core.Config, error) {
	cfg, err := c.opts.toCore()
	if err != nil {
		return core.Config{}, err
	}
	if c.pool != nil {
		cfg.Pool = c.pool.p
	}
	return cfg, nil
}

// engineConfig resolves the span-engine configuration for bzip2/LZ4/
// zstd, applying the shared pool when one was requested.
func (c config) engineConfig() (spanengine.Config, error) {
	cfg, err := c.opts.toEngine()
	if err != nil {
		return spanengine.Config{}, err
	}
	if c.pool != nil {
		cfg.Pool = c.pool.p
	}
	return cfg, nil
}

// errOptNilPool is WithSharedPool's eager validation failure.
var errOptNilPool = fmt.Errorf("rapidgzip: WithSharedPool(nil)")

// An Option configures Open, OpenBytes or any of the constructors that
// accept functional options. Invalid settings (an unknown strategy, a
// non-positive chunk size, ...) are reported by the constructor — each
// With* function validates eagerly and the first error wins.
type Option func(*config) error

func resolve(opts []Option) (config, error) {
	var cfg config
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return config{}, err
		}
	}
	// Cross-option conflicts are checked after the loop — they depend on
	// the combination, not any single call, so order cannot matter.
	if cfg.pool != nil && cfg.opts.AccessCacheSize != 0 {
		return config{}, fmt.Errorf("%w: WithAccessCacheSize has no effect under WithSharedPool (the pool's byte budget replaces the per-archive span count)", ErrConflictingOptions)
	}
	return cfg, nil
}

// WithParallelism sets the number of decompression workers. Zero (the
// default) selects runtime.NumCPU().
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative parallelism %d", n)
		}
		c.opts.Parallelism = n
		return nil
	}
}

// WithChunkSize sets the compressed bytes handed to one worker task.
// Zero selects the paper's 4 MiB default.
func WithChunkSize(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative chunk size %d", n)
		}
		c.opts.ChunkSize = n
		return nil
	}
}

// WithVerify enables (or disables) checksum verification where the
// format supports it — gzip member CRC32s during sequential
// consumption; bzip2 and LZ4 verify during every decode when the file
// carries checksums, regardless of this option.
func WithVerify(v bool) Option {
	return func(c *config) error {
		c.opts.VerifyChecksums = v
		return nil
	}
}

// WithMaxPrefetch bounds the number of speculative chunk (or span)
// decodes in flight, for every format. Zero selects the default.
func WithMaxPrefetch(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative prefetch bound %d", n)
		}
		c.opts.MaxPrefetch = n
		return nil
	}
}

// WithAccessCacheSize sets the span-cache capacity, in spans, for
// every format (for gzip/BGZF a span is a chunk of the speculative
// pipeline). Zero selects the default.
//
// Since Open serves every format file-backed — the compressed bytes
// are never resident as a whole — this cache is the dominant term of
// an archive's decompressed-side memory budget: peak resident decoded
// bytes are bounded by roughly (AccessCacheSize + MaxPrefetch) × the
// largest span's decompressed size, plus one in-flight compressed
// extent per worker.
//
// Combining this option with WithSharedPool fails with
// ErrConflictingOptions: the pool's byte budget replaces the
// per-archive span count as the cache bound, so a per-archive size
// cannot be honoured there.
func WithAccessCacheSize(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rapidgzip: negative cache size %d", n)
		}
		c.opts.AccessCacheSize = n
		return nil
	}
}

// WithInMemory loads the whole compressed file into memory at Open and
// serves every decode zero-copy from the resident buffer — the
// pre-file-backed behavior, for every format including gzip/BGZF. It
// only makes sense for files comfortably smaller than RAM on storage
// slow enough that re-reading span extents hurts (network
// filesystems); the default file-backed path needs bounded memory
// regardless of file size. OpenBytes is always in-memory; the option
// is a no-op there.
func WithInMemory() Option {
	return func(c *config) error {
		c.inMemory = true
		return nil
	}
}

// WithStrategy selects the prefetch strategy by name: "adaptive" (the
// default), "fixed", or "multistream". It applies to every format —
// the gzip/BGZF chunk fetcher and the span engine behind bzip2/LZ4/
// zstd consult the same strategy interface. Unknown names fail here,
// at option time — not silently at some later decode.
func WithStrategy(name string) Option {
	return func(c *config) error {
		probe := Options{Strategy: name}
		if _, err := probe.toCore(); err != nil {
			return err
		}
		c.opts.Strategy = name
		return nil
	}
}

// WithFormat forces the container format instead of sniffing the
// content — for data whose magic bytes are unavailable (streams with
// stripped headers) or to fail fast when only one format is
// acceptable. Opening a file of a different format then fails with the
// backend's parse error.
func WithFormat(f Format) Option {
	return func(c *config) error {
		switch f {
		case FormatGzip, FormatBGZF, FormatBzip2, FormatLZ4, FormatZstd:
			c.format = f
			return nil
		}
		return fmt.Errorf("%w: cannot force %v", ErrUnsupportedFormat, f)
	}
}

// WithIndexFile imports the index at path during Open, making the
// reader fully indexed from the start (the paper's "(index)" mode):
// seek points with windows for gzip/BGZF, the checkpoint table for
// bzip2/LZ4/zstd — either way the initial scan or sizing pass is
// skipped entirely. It implies WithoutIndexDiscovery. The index must
// match the opened file (format tag, compressed size and source
// fingerprint are all enforced).
func WithIndexFile(path string) Option {
	return func(c *config) error {
		if path == "" {
			return fmt.Errorf("rapidgzip: empty index file path")
		}
		c.indexFile = path
		return nil
	}
}

// WithoutIndexDiscovery disables the automatic import of a sibling
// "<file>.rgzidx" index that Open performs by default for indexable
// formats.
func WithoutIndexDiscovery() Option {
	return func(c *config) error {
		c.noDiscovery = true
		return nil
	}
}

// WithOptions applies a legacy Options struct wholesale — the bridge
// for call sites migrating to functional options one knob at a time.
//
// Deprecated: pass the individual functional options instead —
// WithParallelism, WithChunkSize, WithVerify, WithMaxPrefetch,
// WithAccessCacheSize and WithStrategy cover every Options field, and
// validate eagerly where the struct could smuggle invalid values in.
func WithOptions(o Options) Option {
	return func(c *config) error {
		if _, err := o.toCore(); err != nil {
			return err
		}
		c.opts = o
		return nil
	}
}
