package rapidgzip

import (
	"errors"
	"fmt"

	"repro/internal/gzformat"
)

// Format identifies a compression container format handled by Open.
type Format int

const (
	// FormatUnknown means the content matched no supported magic (or,
	// as an Open option default, "sniff the content").
	FormatUnknown Format = iota
	// FormatGzip is plain gzip (RFC 1952), decompressed by the paper's
	// speculative chunked architecture.
	FormatGzip
	// FormatBGZF is blocked gzip (bgzip/htslib): gzip whose members
	// carry their compressed size in a "BC" extra subfield, enabling
	// the metadata fast path of §3.4.4.
	FormatBGZF
	// FormatBzip2 is bzip2, decompressed with lbzip2-style stream-level
	// parallelism and checkpointed per-stream random access.
	FormatBzip2
	// FormatLZ4 is the LZ4 frame format, with frame-level parallelism
	// and checkpointed per-frame random access.
	FormatLZ4
	// FormatZstd is Zstandard (RFC 8878), with pzstd-style frame-level
	// parallelism for multi-frame files (§4.9's trivially
	// parallelizable case) and checkpointed per-frame random access.
	FormatZstd
)

// String returns the name the CLI's --format flag uses.
func (f Format) String() string {
	switch f {
	case FormatGzip:
		return "gzip"
	case FormatBGZF:
		return "bgzf"
	case FormatBzip2:
		return "bzip2"
	case FormatLZ4:
		return "lz4"
	case FormatZstd:
		return "zstd"
	}
	return "unknown"
}

// ParseFormat is the inverse of Format.String, for flag parsing.
// "auto" and "" map to FormatUnknown (sniff the content).
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "auto":
		return FormatUnknown, nil
	case "gzip", "gz":
		return FormatGzip, nil
	case "bgzf":
		return FormatBGZF, nil
	case "bzip2", "bz2":
		return FormatBzip2, nil
	case "lz4":
		return FormatLZ4, nil
	case "zstd", "zst":
		return FormatZstd, nil
	}
	return FormatUnknown, fmt.Errorf("%w: %q (want auto, gzip, bgzf, bzip2, lz4 or zstd)", ErrUnsupportedFormat, s)
}

// ErrUnsupportedFormat reports content that matched no supported
// format magic (or a format name/value outside the supported set).
// Test with errors.Is.
var ErrUnsupportedFormat = errors.New("rapidgzip: unsupported format")

// ErrSourceRead reports that the compressed source itself could not be
// read — a directory opened as a file, a short pread from a truncated
// or vanished file, permissions yanked between stat and read. It is
// distinct from ErrUnsupportedFormat (the bytes were readable but match
// no magic) and from format corruption errors (the bytes were readable
// but malformed): callers branching on it know the storage failed, not
// the content. Test with errors.Is.
var ErrSourceRead = errors.New("rapidgzip: reading compressed source failed")

// ErrClosed reports an operation on an archive whose Close has been
// called (or began concurrently: a ReadAt racing Close loses cleanly
// with this error instead of surfacing a pread on a closed file
// descriptor). Test with errors.Is.
var ErrClosed = errors.New("rapidgzip: archive is closed")

// ErrNoIndexSupport reports an index operation (Build/Export/Import,
// WithIndexFile) unsupported by the archive's format or backing. Since
// the span engine landed, every supported format persists an index
// (seek points for gzip/BGZF, checkpoint tables for bzip2/LZ4/zstd);
// the error remains for mismatched imports — e.g. handing a bzip2
// archive a seek-point index that carries no checkpoint table. Test
// with errors.Is.
var ErrNoIndexSupport = errors.New("rapidgzip: format does not support seek-point indexes")

// DetectFormat sniffs the magic bytes of a content prefix. Pass at
// least SniffLen bytes when available; shorter prefixes degrade to the
// formats they can still prove.
func DetectFormat(prefix []byte) Format {
	switch gzformat.Sniff(prefix) {
	case gzformat.KindGzip:
		return FormatGzip
	case gzformat.KindBGZF:
		return FormatBGZF
	case gzformat.KindBzip2:
		return FormatBzip2
	case gzformat.KindLZ4:
		return FormatLZ4
	case gzformat.KindZstd:
		return FormatZstd
	}
	return FormatUnknown
}

// SniffLen is the content prefix size DetectFormat wants for a
// definitive answer.
const SniffLen = gzformat.SniffLen

// Capabilities reports what an Archive's format/backing can actually
// do, so callers can branch instead of discovering limitations as
// runtime errors. Fields are per-archive, not per-format: a
// single-frame LZ4 file reports no random access while a multi-frame
// one does.
type Capabilities struct {
	// Seek reports working Seek/ReadAt over the decompressed stream.
	Seek bool
	// RandomAccess reports sub-linear seeking: the archive reaches an
	// arbitrary offset via checkpoints or an index without decoding
	// everything before it. Seek without RandomAccess means a seek may
	// cost a full decode (e.g. single-stream bzip2).
	RandomAccess bool
	// Parallel reports multi-core decompression for this archive.
	Parallel bool
	// Index reports BuildIndex/ExportIndex/ImportIndex support. Every
	// format has it: gzip/BGZF persist seek points with windows, and
	// bzip2/LZ4/zstd persist their checkpoint tables (RGZIDX04), so
	// reopening with an index skips the sizing pass.
	Index bool
	// Verify reports integrity verification: either opt-in sequential
	// CRC checking (gzip, WithVerify) or checksums validated during
	// every decode (bzip2 always; LZ4/zstd when the frames carry them).
	Verify bool
	// Prefetch reports that sequential or strided access triggers
	// speculative decodes ahead of the cursor (the cache-prefetch
	// architecture of the paper). True whenever the archive has more
	// than one independently decodable chunk; a single-chunk archive
	// has nothing to prefetch.
	Prefetch bool
}
